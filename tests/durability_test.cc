// Crash-safe durability, end to end: a process killed at EVERY injected
// crash point (torn append, post-append, checkpoint write, checkpoint
// reset) must recover through Engine::Open to a state fingerprint-
// identical to a fresh engine that applied exactly the durable op
// prefix. Plus: a mid-chase abort publishes nothing, and a cleanly
// closed journaled session reopens bit-identically.
//
// Crashes are real: the workload runs in a fork()ed child that
// _Exit(42)s inside the failpoint, exactly like kill -9 between two
// write() calls. The parent never constructs an engine itself — all
// engine work happens in single-threaded children, so fork stays safe
// under sanitizers.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "chase/fact_dump.h"
#include "common/failpoint.h"
#include "datalog/parser.h"
#include "engine/engine.h"

namespace triq {
namespace {

using OpFn = std::function<Status(Engine&)>;

constexpr char kTcRules[] =
    "triple(?X, edge, ?Y) -> tc(?X, ?Y) .\n"
    "tc(?X, ?Y), triple(?Y, edge, ?Z) -> tc(?X, ?Z) .\n";

/// An op that loads a foreign-dictionary instance *containing nulls*
/// through LoadDatabase: the journal must capture it as a blob and
/// replay it through the same re-interning path (flag "0"), keeping
/// null allocation order — and therefore the fingerprint — identical.
Status LoadForeignNulls(Engine& engine) {
  auto dict = std::make_shared<Dictionary>();
  chase::Instance db(dict);
  db.AddFact("p", {"m1"});
  db.AddFact("p", {"m2"});
  auto program =
      datalog::ParseProgram("p(?X) -> exists ?Y anon(?X, ?Y) .\n", dict);
  if (!program.ok()) return program.status();
  TRIQ_RETURN_IF_ERROR(RunChase(*program, &db));
  return engine.LoadDatabase(std::move(db));
}

/// The canonical mutation sequence. Every op journals exactly ONE
/// record, so crash-failpoint evaluation k maps 1:1 onto op k. The two
/// Materialize calls exercise checkpoint compaction mid-history.
std::vector<OpFn> Workload() {
  return {
      [](Engine& e) { return e.LoadTurtle("a edge b .\nb edge c .\n"); },
      [](Engine& e) { return e.AttachRules(kTcRules); },
      [](Engine& e) { return e.AddTriple("c", "edge", "d"); },
      [](Engine& e) { return e.Materialize().status(); },
      [](Engine& e) { return e.AddTriple("d", "edge", "e"); },
      [](Engine& e) { return LoadForeignNulls(e); },
      [](Engine& e) {
        return e.AttachRules("triple(?X, edge, ?Y) -> reach(?Y) .\n");
      },
      [](Engine& e) { return e.Materialize().status(); },
      [](Engine& e) { return e.AddTriple("e", "edge", "f"); },
  };
}
constexpr size_t kWorkloadOps = 9;
constexpr size_t kFirstMaterializeOp = 4;  // 1-based index in Workload()

EngineOptions JournaledOptions(const std::string& wal) {
  return EngineOptions()
      .SetJournalPath(wal)
      .SetJournalFsync(JournalFsync::kAlways);
}

std::string FreshWal(const std::string& name) {
  const std::string wal = ::testing::TempDir() + "/" + name;
  std::remove(wal.c_str());
  std::remove((wal + ".ckpt").c_str());
  std::remove((wal + ".ckpt.tmp").c_str());
  return wal;
}

/// Forks, runs `child`, returns its exit code (child must _Exit).
int ForkAndWait(const std::function<void()>& child) {
  pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    child();
    std::_Exit(120);  // child fell through without _Exit-ing
  }
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  if (!WIFEXITED(wstatus)) return -1;
  return WEXITSTATUS(wstatus);
}

/// Child body: run the workload against a journaled engine with `spec`
/// armed. _Exit(42) comes from inside the armed failpoint; 43 means the
/// workload completed without the failpoint firing (sweep exhausted).
void WorkloadChild(const std::string& wal, const std::string& spec) {
  if (!FailpointsConfigure(spec)) std::_Exit(90);
  auto engine = Engine::Open(JournaledOptions(wal));
  if (!engine.ok()) std::_Exit(91);
  for (const OpFn& op : Workload()) {
    if (!op(**engine).ok()) std::_Exit(92);
  }
  std::_Exit(43);
}

/// Child body: recover the crashed journal and compare — base
/// fingerprint AND materialized-closure fingerprint — against a fresh
/// journal-less engine that applied ops 1..prefix. _Exit(0) on match.
void VerifyChild(const std::string& wal, size_t prefix) {
  auto recovered = Engine::Open(JournaledOptions(wal));
  if (!recovered.ok()) std::_Exit(80);

  Engine reference{EngineOptions()};
  const std::vector<OpFn> ops = Workload();
  for (size_t i = 0; i < prefix; ++i) {
    if (!ops[i](reference).ok()) std::_Exit(81);
  }
  if (chase::FactFingerprint((*recovered)->base()) !=
      chase::FactFingerprint(reference.base())) {
    std::_Exit(82);
  }
  auto recovered_closure = (*recovered)->MaterializedInstance();
  auto reference_closure = reference.MaterializedInstance();
  if (!recovered_closure.ok() || !reference_closure.ok()) std::_Exit(83);
  if (chase::FactFingerprint(**recovered_closure) !=
      chase::FactFingerprint(**reference_closure)) {
    std::_Exit(84);
  }
  std::_Exit(0);
}

TEST(DurabilityTest, KillAtEveryAppendRecoversTheDurablePrefix) {
  // journal.sync.crash fires AFTER the k-th record is durable (prefix
  // k); journal.write.crash tears the k-th record mid-write (prefix
  // k-1). Sweeping k past the workload length proves the sweep actually
  // covered every append.
  struct Mode {
    const char* failpoint;
    size_t durable_at_k_offset;  // prefix = k - offset
  };
  for (const Mode& mode : {Mode{"journal.sync.crash", 0},
                           Mode{"journal.write.crash", 1}}) {
    size_t crashes = 0;
    for (size_t k = 1;; ++k) {
      const std::string wal =
          FreshWal(std::string("sweep.") + mode.failpoint + "." +
                   std::to_string(k) + ".wal");
      const std::string spec =
          std::string(mode.failpoint) + ":" + std::to_string(k);
      int code = ForkAndWait([&] { WorkloadChild(wal, spec); });
      if (code == 43) break;  // k exceeded the number of appends
      ASSERT_EQ(code, 42) << mode.failpoint << " k=" << k;
      ++crashes;
      const size_t prefix = k - mode.durable_at_k_offset;
      int verified = ForkAndWait([&] { VerifyChild(wal, prefix); });
      EXPECT_EQ(verified, 0)
          << mode.failpoint << " k=" << k << " prefix=" << prefix;
    }
    // One crash per op (every op appends exactly one record).
    EXPECT_EQ(crashes, kWorkloadOps) << mode.failpoint;
  }
}

TEST(DurabilityTest, KillInsideCheckpointRecoversTheMaterializedState) {
  // Both checkpoint crash windows — torn tmp before the rename, and the
  // gap between the rename and the journal reset — must recover to the
  // state as of the first Materialize (op 4): once from the old
  // checkpointless journal, once from the new checkpoint with the stale
  // epoch-behind records discarded.
  for (const char* failpoint :
       {"journal.checkpoint.crash", "journal.reset.crash"}) {
    const std::string wal = FreshWal(std::string("ckpt.") + failpoint + ".wal");
    int code = ForkAndWait(
        [&] { WorkloadChild(wal, std::string(failpoint) + ":1"); });
    ASSERT_EQ(code, 42) << failpoint;
    int verified =
        ForkAndWait([&] { VerifyChild(wal, kFirstMaterializeOp); });
    EXPECT_EQ(verified, 0) << failpoint;
  }
}

TEST(DurabilityTest, CleanCloseReopensIdenticalAndUsable) {
  const std::string wal = FreshWal("clean.wal");
  uint64_t base_fp = 0;
  uint64_t closure_fp = 0;
  size_t tc_count = 0;
  {
    auto engine = Engine::Open(JournaledOptions(wal));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const OpFn& op : Workload()) ASSERT_TRUE(op(**engine).ok());
    base_fp = chase::FactFingerprint((*engine)->base());
    auto closure = (*engine)->MaterializedInstance();
    ASSERT_TRUE(closure.ok());
    closure_fp = chase::FactFingerprint(**closure);
    auto tc = (*engine)->Answers("tc");
    ASSERT_TRUE(tc.ok());
    tc_count = tc->size();
  }
  auto reopened = Engine::Open(JournaledOptions(wal));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(chase::FactFingerprint((*reopened)->base()), base_fp);
  auto closure = (*reopened)->MaterializedInstance();
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(chase::FactFingerprint(**closure), closure_fp);
  // The reopened session is live, not a read-only restore.
  auto tc = (*reopened)->Answers("tc");
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->size(), tc_count);
  ASSERT_TRUE((*reopened)->AddTriple("f", "edge", "g").ok());
  auto grown = (*reopened)->Answers("tc");
  ASSERT_TRUE(grown.ok());
  EXPECT_GT(grown->size(), tc_count);
  EngineStats stats = (*reopened)->stats();
  EXPECT_TRUE(stats.journal_enabled);
  // The closing MaterializedInstance() above checkpointed, so recovery
  // came from the checkpoint with an empty tail; the AddTriple journals
  // into the new epoch.
  EXPECT_GE(stats.journal_records, 1u);
}

TEST(DurabilityTest, MidChaseAbortPublishesNothing) {
  Engine engine;
  ASSERT_TRUE(engine.LoadTurtle("a edge b .\nb edge c .\n").ok());
  ASSERT_TRUE(engine.AttachRules(kTcRules).ok());
  ASSERT_TRUE(engine.Materialize().ok());
  auto before = engine.Answers("tc");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 3u);

  ASSERT_TRUE(engine.AddTriple("c", "edge", "d").ok());
  ASSERT_TRUE(FailpointsConfigure("chase.round.abort:1"));
  auto aborted = engine.Materialize();
  ASSERT_TRUE(FailpointsConfigure(""));
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kInternal);

  // Nothing was published: the session still reports dirty, and the
  // next (un-sabotaged) read serves the complete new closure — never a
  // half-chased one.
  EXPECT_FALSE(engine.IsMaterialized());
  auto after = engine.Answers("tc");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 6u);
  EXPECT_TRUE(engine.IsMaterialized());
}

TEST(DurabilityTest, CrashedMidChaseRecoveryReplaysToTheFullClosure) {
  // A chase abort in a JOURNALED session: the journal already holds the
  // kMaterialize-triggering ops, so a recovery re-runs the chase and
  // lands on the closure the crashed process never published.
  const std::string wal = FreshWal("midchase.wal");
  int code = ForkAndWait([&] {
    if (!FailpointsConfigure("chase.round.abort:1")) std::_Exit(90);
    auto engine = Engine::Open(JournaledOptions(wal));
    if (!engine.ok()) std::_Exit(91);
    if (!(*engine)->LoadTurtle("a edge b .\nb edge c .\n").ok()) {
      std::_Exit(92);
    }
    if (!(*engine)->AttachRules(kTcRules).ok()) std::_Exit(92);
    auto aborted = (*engine)->Materialize();
    if (aborted.ok()) std::_Exit(93);
    std::_Exit(42);  // "crash" with the journal holding ops 1..2
  });
  ASSERT_EQ(code, 42);
  auto recovered = Engine::Open(JournaledOptions(wal));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto tc = (*recovered)->Answers("tc");
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->size(), 3u);
}

}  // namespace
}  // namespace triq

#include <gtest/gtest.h>

#include <memory>

#include "datalog/parser.h"
#include "datalog/program.h"

namespace triq::datalog {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

Rule R(std::string_view text, Dictionary* dict) {
  auto rule = ParseRule(text, dict);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return std::move(rule).value();
}

TEST(RuleTest, BodyPartition) {
  auto dict = Dict();
  Rule rule = R("p(?X), not q(?X), r(?X, ?Y) -> s(?Y)", dict.get());
  EXPECT_EQ(rule.PositiveBody().size(), 2u);
  EXPECT_EQ(rule.NegativeBody().size(), 1u);
  EXPECT_TRUE(rule.NegativeBody()[0].negated);
}

TEST(RuleTest, VariableAccessors) {
  auto dict = Dict();
  Rule rule = R("p(?X, ?Y), q(?Y, ?Z) -> exists ?W s(?X, ?W)", dict.get());
  EXPECT_EQ(rule.BodyVariables().size(), 3u);
  EXPECT_EQ(rule.HeadVariables().size(), 2u);
  ASSERT_EQ(rule.ExistentialVariables().size(), 1u);
  EXPECT_EQ(dict->Text(rule.ExistentialVariables()[0].symbol()), "?W");
  ASSERT_EQ(rule.FrontierVariables().size(), 1u);
  EXPECT_EQ(dict->Text(rule.FrontierVariables()[0].symbol()), "?X");
}

TEST(RuleTest, ConstraintHasNoHead) {
  auto dict = Dict();
  Rule rule = R("p(?X), q(?X) -> false", dict.get());
  EXPECT_TRUE(rule.IsConstraint());
  EXPECT_TRUE(rule.HeadVariables().empty());
  EXPECT_TRUE(rule.ExistentialVariables().empty());
}

TEST(RuleTest, DuplicateVariablesCountedOnce) {
  auto dict = Dict();
  Rule rule = R("p(?X, ?X), q(?X) -> s(?X, ?X)", dict.get());
  EXPECT_EQ(rule.BodyVariables().size(), 1u);
  EXPECT_EQ(rule.HeadVariables().size(), 1u);
}

TEST(RuleTest, MultiHeadSharedExistential) {
  auto dict = Dict();
  Rule rule =
      R("c(?X, ?Y) -> exists ?Z a(?X, ?Z), a(?Y, ?Z)", dict.get());
  EXPECT_EQ(rule.head.size(), 2u);
  EXPECT_EQ(rule.ExistentialVariables().size(), 1u);
  EXPECT_EQ(rule.FrontierVariables().size(), 2u);
}

TEST(ProgramTest, PredicatesAndHeadPredicates) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    e(?X, ?Y) -> tc(?X, ?Y) .
    tc(?X, ?Y), bad(?Y) -> false .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->Predicates().size(), 3u);      // e, tc, bad
  EXPECT_EQ(program->HeadPredicates().size(), 1u);  // tc
}

TEST(ProgramTest, WithoutConstraintsDropsBottoms) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    p(?X) -> q(?X) .
    q(?X) -> false .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->WithoutConstraints().size(), 1u);
}

TEST(ProgramTest, PositiveVersionDropsNegationAndConstraints) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    p(?X), not q(?X) -> r(?X) .
    r(?X) -> false .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  Program positive = program->PositiveVersion();
  ASSERT_EQ(positive.size(), 1u);
  EXPECT_EQ(positive.rules()[0].body.size(), 1u);
}

TEST(ProgramTest, AppendRequiresSharedDictionary) {
  auto dict1 = Dict();
  auto dict2 = Dict();
  Program a(dict1), b(dict2);
  EXPECT_FALSE(a.Append(b).ok());
  Program c(dict1);
  EXPECT_TRUE(a.Append(c).ok());
}

TEST(RuleTest, ValidateRejectsNullsInRules) {
  Rule rule;
  Atom body;
  body.predicate = 5;
  body.args = {Term::Null(0)};
  rule.body.push_back(body);
  Atom head;
  head.predicate = 6;
  head.args = {Term::Null(0)};
  rule.head.push_back(head);
  EXPECT_FALSE(rule.Validate().ok());
}

}  // namespace
}  // namespace triq::datalog

#include <gtest/gtest.h>

#include <memory>

#include "datalog/parser.h"
#include "datalog/stratify.h"

namespace triq::datalog {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

TEST(StratifyTest, PositiveProgramIsOneStratum) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    edge(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  auto strat = Stratify(*program);
  ASSERT_TRUE(strat.ok());
  EXPECT_EQ(strat->num_strata, 1);
}

TEST(StratifyTest, NegationForcesHigherStratum) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    node(?X), not reached(?X) -> unreached(?X) .
    edge(?X, ?Y) -> reached(?Y) .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  auto strat = Stratify(*program);
  ASSERT_TRUE(strat.ok());
  EXPECT_EQ(strat->num_strata, 2);
  EXPECT_LT(strat->StratumOf(dict->Intern("reached")),
            strat->StratumOf(dict->Intern("unreached")));
}

TEST(StratifyTest, ChainOfNegationsStacksStrata) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    base(?X) -> a(?X) .
    base(?X), not a(?X) -> b(?X) .
    base(?X), not b(?X) -> c(?X) .
    base(?X), not c(?X) -> d(?X) .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  auto strat = Stratify(*program);
  ASSERT_TRUE(strat.ok());
  EXPECT_EQ(strat->num_strata, 4);
}

TEST(StratifyTest, RecursionThroughNegationFails) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    node(?X), not q(?X) -> p(?X) .
    node(?X), not p(?X) -> q(?X) .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  auto strat = Stratify(*program);
  ASSERT_FALSE(strat.ok());
  // The failure names the offending cycle: both predicates and the
  // rules whose negated atoms close it.
  const std::string message = strat.status().message();
  EXPECT_NE(message.find("p"), std::string::npos) << message;
  EXPECT_NE(message.find("q"), std::string::npos) << message;
  EXPECT_NE(message.find("rule"), std::string::npos) << message;
}

TEST(StratifyTest, SelfNegationFails) {
  auto dict = Dict();
  auto program = ParseProgram("p(?X), not p(?X) -> p(?X) .", dict);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Stratify(*program).ok());
}

TEST(StratifyTest, CliqueAuxProgramStratifies) {
  auto dict = Dict();
  // The not_min/not_max fragment of Example 4.3.
  auto program = ParseProgram(R"(
    succ0(?X, ?Y) -> less0(?X, ?Y) .
    succ0(?X, ?Y), less0(?Y, ?Z) -> less0(?X, ?Z) .
    less0(?X, ?Y) -> not_max(?X) .
    less0(?X, ?Y) -> not_min(?Y) .
    less0(?X, ?Y), not not_min(?X) -> zero0(?X) .
    less0(?Y, ?X), not not_max(?X) -> max0(?X) .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  auto strat = Stratify(*program);
  ASSERT_TRUE(strat.ok());
  EXPECT_GT(strat->StratumOf(dict->Intern("zero0")),
            strat->StratumOf(dict->Intern("not_min")));
}

TEST(StratifyTest, MultiHeadRulesShareAStratum) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    in(?X) -> a(?X), b(?X) .
    in(?X), not c(?X) -> a(?X) .
    in(?X) -> c(?X) .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  auto strat = Stratify(*program);
  ASSERT_TRUE(strat.ok());
  EXPECT_EQ(strat->StratumOf(dict->Intern("a")),
            strat->StratumOf(dict->Intern("b")));
}

TEST(StratifyTest, RulesInStratumSelectsByHead) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    base(?X) -> a(?X) .
    base(?X), not a(?X) -> b(?X) .
    b(?X) -> false .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  auto strat = Stratify(program->WithoutConstraints());
  ASSERT_TRUE(strat.ok());
  EXPECT_EQ(strat->RulesInStratum(*program, 0).size(), 1u);
  EXPECT_EQ(strat->RulesInStratum(*program, 1).size(), 1u);
}

}  // namespace
}  // namespace triq::datalog

// Tests for the bench/harness.h runner: stats aggregation and the
// JSON shape of the perf-trajectory files.
#include "harness.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace triq::bench {
namespace {

TEST(ComputeStatsTest, EmptyInputIsAllZero) {
  SampleStats stats = ComputeStats({});
  EXPECT_EQ(stats.min_ns, 0);
  EXPECT_EQ(stats.max_ns, 0);
  EXPECT_EQ(stats.mean_ns, 0);
  EXPECT_EQ(stats.median_ns, 0);
  EXPECT_EQ(stats.p95_ns, 0);
}

TEST(ComputeStatsTest, SingleSample) {
  SampleStats stats = ComputeStats({42.0});
  EXPECT_DOUBLE_EQ(stats.min_ns, 42.0);
  EXPECT_DOUBLE_EQ(stats.max_ns, 42.0);
  EXPECT_DOUBLE_EQ(stats.mean_ns, 42.0);
  EXPECT_DOUBLE_EQ(stats.median_ns, 42.0);
  EXPECT_DOUBLE_EQ(stats.p95_ns, 42.0);
}

TEST(ComputeStatsTest, OddCountMedianIsMiddleElement) {
  // Unsorted on purpose: ComputeStats must sort.
  SampleStats stats = ComputeStats({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.median_ns, 3.0);
  EXPECT_DOUBLE_EQ(stats.min_ns, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_ns, 5.0);
  EXPECT_DOUBLE_EQ(stats.mean_ns, 3.0);
}

TEST(ComputeStatsTest, EvenCountMedianAveragesMiddlePair) {
  SampleStats stats = ComputeStats({4.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.median_ns, 2.5);
}

TEST(ComputeStatsTest, P95IsNearestRank) {
  // 20 samples 1..20: ceil(0.95 * 20) = 19 -> the 19th smallest.
  std::vector<double> samples;
  for (int i = 20; i >= 1; --i) samples.push_back(i);
  SampleStats stats = ComputeStats(samples);
  EXPECT_DOUBLE_EQ(stats.p95_ns, 19.0);

  // 10 samples: ceil(0.95 * 10) = 10 -> the maximum.
  samples.resize(10);
  stats = ComputeStats(samples);
  EXPECT_DOUBLE_EQ(stats.p95_ns, stats.max_ns);
}

TEST(HarnessTest, RunsWarmupPlusRepetitions) {
  HarnessOptions options;
  options.warmup = 2;
  options.repetitions = 5;
  Harness harness(options);
  int calls = 0;
  const BenchResult result =
      harness.Run("counting", [&](std::map<std::string, double>* counters) {
        ++calls;
        (*counters)["calls"] = calls;
      });
  EXPECT_EQ(calls, 7);  // 2 warmup + 5 timed
  EXPECT_EQ(result.repetitions, 5);
  EXPECT_EQ(result.warmup, 2);
  // Counters hold the LAST timed run's values.
  EXPECT_DOUBLE_EQ(result.counters.at("calls"), 7.0);
  EXPECT_GT(result.stats.median_ns, 0.0);
  EXPECT_GE(result.stats.p95_ns, result.stats.median_ns);
  EXPECT_GE(result.stats.max_ns, result.stats.p95_ns);
  EXPECT_LE(result.stats.min_ns, result.stats.mean_ns);
}

TEST(HarnessTest, AccumulatesResultsInOrder) {
  Harness harness(HarnessOptions::Quick());
  harness.Run("first", [](std::map<std::string, double>*) {});
  harness.Run("second", [](std::map<std::string, double>*) {});
  ASSERT_EQ(harness.results().size(), 2u);
  EXPECT_EQ(harness.results()[0].name, "first");
  EXPECT_EQ(harness.results()[1].name, "second");
}

TEST(JsonTest, ShapeContainsSuiteStatsAndCounters) {
  BenchResult result;
  result.name = "chase/tc_chain/256";
  result.warmup = 1;
  result.repetitions = 3;
  result.stats = ComputeStats({100.0, 200.0, 300.0});
  result.counters["answers"] = 12.0;

  std::string json =
      ResultsToJson("chase", HarnessOptions::Quick(), {result});

  EXPECT_NE(json.find("\"suite\": \"chase\""), std::string::npos);
  EXPECT_NE(json.find("\"warmup\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"repetitions\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"chase/tc_chain/256\""), std::string::npos);
  EXPECT_NE(json.find("\"median_ns\": 200.0"), std::string::npos);
  EXPECT_NE(json.find("\"p95_ns\": 300.0"), std::string::npos);
  EXPECT_NE(json.find("\"mean_ns\": 200.0"), std::string::npos);
  EXPECT_NE(json.find("\"min_ns\": 100.0"), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\": 300.0"), std::string::npos);
  EXPECT_NE(json.find("\"counters\": {\"answers\": 12.0}"), std::string::npos);
}

TEST(JsonTest, EscapesQuotesAndBackslashes) {
  BenchResult result;
  result.name = "weird\"name\\with\nnewline";
  std::string json = ResultsToJson("s", HarnessOptions(), {result});
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnewline"), std::string::npos);
}

TEST(JsonTest, EscapesControlCharacters) {
  BenchResult result;
  result.name = "cr\rbell\x01";
  std::string json = ResultsToJson("s", HarnessOptions(), {result});
  EXPECT_NE(json.find("cr\\u000dbell\\u0001"), std::string::npos);
}

TEST(JsonTest, EmptyResultsIsValidDocument) {
  std::string json = ResultsToJson("empty", HarnessOptions(), {});
  EXPECT_NE(json.find("\"benchmarks\": [\n  ]"), std::string::npos);
}

}  // namespace
}  // namespace triq::bench

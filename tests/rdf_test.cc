#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "rdf/turtle.h"
#include "rdf/vocabulary.h"

namespace triq::rdf {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

TEST(GraphTest, AddAndContains) {
  Graph g(Dict());
  EXPECT_TRUE(g.Add("a", "p", "b"));
  EXPECT_FALSE(g.Add("a", "p", "b"));  // duplicate
  EXPECT_EQ(g.size(), 1u);
  SymbolId a = g.dict().Find("a");
  SymbolId p = g.dict().Find("p");
  SymbolId b = g.dict().Find("b");
  EXPECT_TRUE(g.Contains(Triple{a, p, b}));
  EXPECT_FALSE(g.Contains(Triple{b, p, a}));
}

TEST(GraphTest, MatchBySubject) {
  Graph g(Dict());
  g.Add("a", "p", "b");
  g.Add("a", "q", "c");
  g.Add("b", "p", "c");
  SymbolId a = g.dict().Find("a");
  int count = 0;
  g.Match(a, std::nullopt, std::nullopt, [&](const Triple&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(GraphTest, MatchByPredicateAndObject) {
  Graph g(Dict());
  g.Add("a", "p", "c");
  g.Add("b", "p", "c");
  g.Add("b", "q", "c");
  SymbolId p = g.dict().Find("p");
  SymbolId c = g.dict().Find("c");
  int count = 0;
  g.Match(std::nullopt, p, c, [&](const Triple&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(GraphTest, MatchAllWildcards) {
  Graph g(Dict());
  g.Add("a", "p", "b");
  g.Add("b", "p", "c");
  int count = 0;
  g.Match(std::nullopt, std::nullopt, std::nullopt,
          [&](const Triple&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(GraphTest, MatchUnknownSymbolIsEmpty) {
  Graph g(Dict());
  g.Add("a", "p", "b");
  SymbolId z = g.dict().Intern("zzz");
  int count = 0;
  g.Match(z, std::nullopt, std::nullopt, [&](const Triple&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(GraphTest, ActiveDomainCollectsAllPositions) {
  Graph g(Dict());
  g.Add("a", "p", "b");
  g.Add("b", "q", "a");
  EXPECT_EQ(g.ActiveDomain().size(), 4u);  // a, b, p, q
}

TEST(TurtleTest, ParsesSimpleStatements) {
  Graph g(Dict());
  ASSERT_TRUE(ParseTurtle(R"(
    dbUllman is_author_of "The Complete Book" .
    dbUllman name "Jeffrey Ullman" .  # comment
  )",
                          &g)
                  .ok());
  EXPECT_EQ(g.size(), 2u);
  SymbolId lit = g.dict().Find("\"The Complete Book\"");
  EXPECT_NE(lit, kInvalidSymbol);
}

TEST(TurtleTest, RoundTripsThroughWriter) {
  Graph g(Dict());
  ASSERT_TRUE(ParseTurtle("a p b .\nb q c .", &g).ok());
  std::string text = WriteTurtle(g);
  Graph g2(Dict());
  ASSERT_TRUE(ParseTurtle(text, &g2).ok());
  EXPECT_EQ(g2.size(), g.size());
}

TEST(TurtleTest, RejectsWrongArity) {
  Graph g(Dict());
  EXPECT_FALSE(ParseTurtle("a p .", &g).ok());
  EXPECT_FALSE(ParseTurtle("a p b c .", &g).ok());
}

TEST(TurtleTest, RejectsUnterminatedString) {
  Graph g(Dict());
  EXPECT_FALSE(ParseTurtle("a p \"oops .", &g).ok());
}

TEST(TurtleTest, QuotedDotDoesNotSplit) {
  Graph g(Dict());
  ASSERT_TRUE(ParseTurtle("a p \"J. R. R. Tolkien\" .", &g).ok());
  EXPECT_EQ(g.size(), 1u);
}

TEST(TurtleStreamTest, RoundTripsThroughWriter) {
  Graph g(Dict());
  for (int i = 0; i < 200; ++i) {
    g.Add("s" + std::to_string(i), "p" + std::to_string(i % 7),
          "o" + std::to_string((i * 3) % 11));
  }
  std::istringstream in(WriteTurtle(g));
  Graph parsed(Dict());
  ASSERT_TRUE(ParseTurtleStream(in, &parsed).ok());
  ASSERT_EQ(parsed.size(), g.size());
  // Same triples, same order (WriteTurtle emits insertion order).
  EXPECT_EQ(WriteTurtle(parsed), WriteTurtle(g));
}

TEST(TurtleStreamTest, AgreesWithStringParserOnTrickyInput) {
  constexpr std::string_view kText = R"(# leading comment
    a p b . b q c .
    c r "two words" .   # trailing comment
    d s "J. R. R. Tolkien" .
    e t
    f .
  )";
  Graph from_string(Dict());
  ASSERT_TRUE(ParseTurtle(kText, &from_string).ok());
  std::istringstream in{std::string(kText)};
  Graph from_stream(Dict());
  ASSERT_TRUE(ParseTurtleStream(in, &from_stream).ok());
  EXPECT_EQ(from_stream.size(), from_string.size());
  EXPECT_EQ(WriteTurtle(from_stream), WriteTurtle(from_string));
}

TEST(TurtleStreamTest, StatementsSpanChunksAndLines) {
  // Statements split across lines arrive through separate FeedLine
  // calls; the splitter must buffer the tail until the '.' shows up.
  std::istringstream in("a\np\nb\n.\nc q d .");
  Graph g(Dict());
  ASSERT_TRUE(ParseTurtleStream(in, &g).ok());
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(WriteTurtle(g), "a p b .\nc q d .\n");
}

TEST(TurtleStreamTest, SurfacesErrorsWithLineNumbers) {
  std::istringstream wrong_arity("a p b .\nc q .\n");
  Graph g(Dict());
  Status status = ParseTurtleStream(wrong_arity, &g);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("line 2"), std::string::npos)
      << status.ToString();
  std::istringstream unterminated("a p \"oops .\n");
  Graph g2(Dict());
  EXPECT_FALSE(ParseTurtleStream(unterminated, &g2).ok());
}

TEST(VocabularyTest, InternsAllTerms) {
  auto dict = Dict();
  Vocabulary v(*dict);
  EXPECT_EQ(dict->Text(v.rdf_type), "rdf:type");
  EXPECT_EQ(dict->Text(v.owl_same_as), "owl:sameAs");
  EXPECT_EQ(dict->Text(v.owl_some_values_from), "owl:someValuesFrom");
  EXPECT_NE(v.owl_class, v.owl_object_property);
}

}  // namespace
}  // namespace triq::rdf

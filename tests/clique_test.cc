#include <gtest/gtest.h>

#include <memory>

#include "core/triq.h"
#include "core/workloads.h"
#include "test_util.h"

namespace triq::core {
namespace {

using test::Dict;

/// Runs Example 4.3 end to end: does the graph contain a k-clique?
bool HasClique(int num_nodes, const std::vector<std::pair<int, int>>& edges,
               int k, std::shared_ptr<Dictionary> dict) {
  auto query = TriqQuery::Create(CliqueProgram(dict), "yes");
  EXPECT_TRUE(query.ok());
  chase::Instance db = CliqueDatabase(num_nodes, edges, k, dict);
  chase::ChaseOptions options;
  options.max_facts = 100'000'000;
  auto answers = query->Evaluate(db, options);
  EXPECT_TRUE(answers.ok()) << answers.status().ToString();
  return !answers->empty();
}

TEST(CliqueTest, TriangleIsA3Clique) {
  auto dict = Dict();
  EXPECT_TRUE(HasClique(3, {{0, 1}, {1, 2}, {0, 2}}, 3, dict));
}

TEST(CliqueTest, PathIsNotA3Clique) {
  auto dict = Dict();
  EXPECT_FALSE(HasClique(3, {{0, 1}, {1, 2}}, 3, dict));
}

TEST(CliqueTest, TriangleHasNo4Clique) {
  auto dict = Dict();
  EXPECT_FALSE(HasClique(3, {{0, 1}, {1, 2}, {0, 2}}, 4, dict));
}

TEST(CliqueTest, K4Contains4Clique) {
  auto dict = Dict();
  EXPECT_TRUE(HasClique(4, CompleteGraphEdges(4), 4, dict));
}

TEST(CliqueTest, K4MinusEdgeHasNo4Clique) {
  auto dict = Dict();
  std::vector<std::pair<int, int>> edges = CompleteGraphEdges(4);
  edges.pop_back();
  EXPECT_FALSE(HasClique(4, edges, 4, dict));
}

TEST(CliqueTest, TwoCliqueIsJustAnEdge) {
  auto dict = Dict();
  EXPECT_TRUE(HasClique(2, {{0, 1}}, 2, dict));
  auto dict2 = Dict();
  EXPECT_FALSE(HasClique(2, {}, 2, dict2));
}

TEST(CliqueTest, SelfLoopsDoNotFakeACilque) {
  // The fifth Π_clique rule exists exactly for this case: a node with a
  // self-loop must not count as a clique of size 2 by itself.
  auto dict = Dict();
  EXPECT_FALSE(HasClique(1, {{0, 0}}, 2, dict));
}

TEST(CliqueTest, EmbeddedTriangleInSparseGraph) {
  auto dict = Dict();
  // A 6-node graph whose only triangle is {2,3,4}.
  EXPECT_TRUE(HasClique(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {2, 4}, {4, 5}}, 3, dict));
}

TEST(CliqueTest, CompleteBipartiteHasNoTriangle) {
  auto dict = Dict();
  // K_{3,3} is triangle-free.
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < 3; ++a) {
    for (int b = 3; b < 6; ++b) edges.emplace_back(a, b);
  }
  EXPECT_FALSE(HasClique(6, edges, 3, dict));
}

class CliqueOnCompleteGraphs : public ::testing::TestWithParam<int> {};

TEST_P(CliqueOnCompleteGraphs, KnHasAllCliquesUpToN) {
  int n = GetParam();
  auto dict = Dict();
  EXPECT_TRUE(HasClique(n, CompleteGraphEdges(n), n, dict));
  auto dict2 = Dict();
  EXPECT_FALSE(HasClique(n, CompleteGraphEdges(n), n + 1, dict2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CliqueOnCompleteGraphs,
                         ::testing::Values(2, 3, 4));

TEST(CliqueTest, RandomGraphEdgesDeterministic) {
  auto e1 = RandomGraphEdges(10, 0.5, 42);
  auto e2 = RandomGraphEdges(10, 0.5, 42);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(RandomGraphEdges(10, 0.0, 1).size(), 0u);
  EXPECT_EQ(RandomGraphEdges(10, 1.0, 1).size(), 45u);
}

}  // namespace
}  // namespace triq::core

# Negative-compile checks for the compile-time analysis layer: prove the
# enforcement actually FIRES, not just that annotated code still builds.
#
#   - [[nodiscard]] on Status: dropping a Status must fail under
#     -Werror=unused-result (any compiler), and the blessed consumption
#     forms (assign, TRIQ_IGNORE_STATUS) must pass.
#   - Thread Safety Analysis: touching a TRIQ_GUARDED_BY member without
#     its mutex must fail under -Werror=thread-safety (clang only; the
#     TSA pair is skipped with a notice on other compilers), and the
#     properly locked version must pass.
#
# Script mode (cmake -P) cannot use try_compile, so each snippet is
# written to WORK_DIR and driven through `${CXX} -fsyntax-only`.
#
# Usage:
#   cmake -DCXX=<compiler> -DINCLUDE_DIR=<repo>/src -DWORK_DIR=<scratch>
#         -P thread_safety_compile_test.cmake

foreach(var CXX INCLUDE_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

set(FAILURES 0)

# Compiles ${SOURCE} with ${FLAGS} (a space-separated string) and checks
# the outcome against ${EXPECT} ("pass" or "fail").
function(check_snippet NAME EXPECT FLAGS SOURCE)
  file(WRITE ${WORK_DIR}/${NAME}.cc "${SOURCE}")
  separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")
  execute_process(
    COMMAND ${CXX} -std=c++17 -fsyntax-only -I${INCLUDE_DIR} ${flag_list}
            ${WORK_DIR}/${NAME}.cc
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(EXPECT STREQUAL "pass" AND NOT rc EQUAL 0)
    message(SEND_ERROR
            "${NAME}: expected to compile but failed (rc=${rc}):\n${err}")
    math(EXPR FAILURES "${FAILURES} + 1")
  elseif(EXPECT STREQUAL "fail" AND rc EQUAL 0)
    message(SEND_ERROR
            "${NAME}: expected a compile error but the snippet compiled "
            "— the enforcement does not fire")
    math(EXPR FAILURES "${FAILURES} + 1")
  else()
    message(STATUS "${NAME}: ok (${EXPECT})")
  endif()
  set(FAILURES ${FAILURES} PARENT_SCOPE)
endfunction()

# ---- [[nodiscard]] Status (any compiler) ------------------------------

check_snippet(nodiscard_ok pass "-Werror=unused-result" [==[
#include "common/result.h"
#include "common/status.h"
triq::Status Make();
triq::Result<int> MakeResult();
void Use() {
  triq::Status kept = Make();
  (void)kept;
  TRIQ_IGNORE_STATUS(Make());
  if (!Make().ok()) return;        // testing the value consumes it
  triq::Result<int> r = MakeResult();
  (void)r;
}
]==])

check_snippet(nodiscard_status_violation fail "-Werror=unused-result" [==[
#include "common/status.h"
triq::Status Make();
void Use() {
  Make();  // dropped Status: must not compile
}
]==])

check_snippet(nodiscard_result_violation fail "-Werror=unused-result" [==[
#include "common/result.h"
triq::Result<int> MakeResult();
void Use() {
  MakeResult();  // dropped Result: must not compile
}
]==])

# ---- clang Thread Safety Analysis (clang only) ------------------------

execute_process(COMMAND ${CXX} --version OUTPUT_VARIABLE cxx_version
                ERROR_QUIET)
if(cxx_version MATCHES "clang")
  set(TSA_FLAGS "-Wthread-safety -Werror=thread-safety")

  check_snippet(tsa_ok pass "${TSA_FLAGS}" [==[
#include "common/thread_annotations.h"
class Counter {
 public:
  void Bump() {
    triq::MutexLock lock(mu_);
    ++value_;
  }
  int Snapshot() {
    triq::MutexLock lock(mu_);
    return value_;
  }

 private:
  void BumpLocked() TRIQ_REQUIRES(mu_) { ++value_; }
  triq::Mutex mu_;
  int value_ TRIQ_GUARDED_BY(mu_) = 0;
};
]==])

  check_snippet(tsa_guarded_violation fail "${TSA_FLAGS}" [==[
#include "common/thread_annotations.h"
class Counter {
 public:
  void Bump() { ++value_; }  // guarded member without the lock

 private:
  triq::Mutex mu_;
  int value_ TRIQ_GUARDED_BY(mu_) = 0;
};
]==])

  check_snippet(tsa_requires_violation fail "${TSA_FLAGS}" [==[
#include "common/thread_annotations.h"
class Counter {
 public:
  void Bump() { BumpLocked(); }  // calls a REQUIRES method lock-free

 private:
  void BumpLocked() TRIQ_REQUIRES(mu_) { ++value_; }
  triq::Mutex mu_;
  int value_ TRIQ_GUARDED_BY(mu_) = 0;
};
]==])
else()
  message(STATUS "TSA snippets skipped: ${CXX} is not clang "
                 "(annotations compile to no-ops)")
endif()

if(FAILURES GREATER 0)
  message(FATAL_ERROR "${FAILURES} negative-compile check(s) failed")
endif()

// The binary fact-dump format: SaveFacts/LoadFacts round trips,
// dictionary remapping into pre-populated dictionaries, null identity,
// and rejection of corrupt input.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "chase/chase.h"
#include "chase/fact_dump.h"
#include "core/workloads.h"
#include "datalog/parser.h"

namespace triq {
namespace {

using chase::Instance;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(FactDumpTest, RoundTripsFactsAndDictionary) {
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  db.AddFact("edge", {"a", "b"});
  db.AddFact("edge", {"b", "c"});
  db.AddFact("label", {"a", "\"node a\""});
  db.AddFact("mark", {"c"});
  const std::string path = TempPath("roundtrip.facts");
  ASSERT_TRUE(chase::SaveFacts(db, path).ok());

  auto loaded = chase::LoadFacts(path, std::make_shared<Dictionary>());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToString(), db.ToString());
  EXPECT_EQ(loaded->TotalFacts(), db.TotalFacts());
}

TEST(FactDumpTest, RemapsIntoPrePopulatedDictionary) {
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  db.AddFact("edge", {"a", "b"});
  const std::string path = TempPath("remap.facts");
  ASSERT_TRUE(chase::SaveFacts(db, path).ok());

  // Shift every id in the target dictionary before loading: the dump's
  // file-local ids must be remapped, not trusted.
  auto target = std::make_shared<Dictionary>();
  target->Intern("unrelated0");
  target->Intern("unrelated1");
  target->Intern("b");  // same text, different id than in the dump
  auto loaded = chase::LoadFacts(path, target);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToString(), db.ToString());
  const chase::Relation* rel = loaded->Find("edge");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 1u);
}

TEST(FactDumpTest, PreservesNullIdentityAndDepth) {
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  // Chase an existential rule so the instance holds shared nulls.
  for (const char* name : {"a", "b"}) db.AddFact("p", {name});
  auto program =
      datalog::ParseProgram("p(?X) -> exists ?Y q(?X, ?Y), r(?Y) .\n", dict);
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(RunChase(*program, &db).ok());
  ASSERT_GT(db.null_count(), 0u);

  const std::string path = TempPath("nulls.facts");
  ASSERT_TRUE(chase::SaveFacts(db, path).ok());
  auto loaded = chase::LoadFacts(path, std::make_shared<Dictionary>());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToString(), db.ToString());
  EXPECT_EQ(loaded->null_count(), db.null_count());
  for (uint32_t id = 0; id < db.null_count(); ++id) {
    EXPECT_EQ(loaded->NullDepth(chase::Term::Null(id)),
              db.NullDepth(chase::Term::Null(id)));
  }
}

TEST(FactDumpTest, LoadedInstanceChasesLikeTheOriginal) {
  auto dict = std::make_shared<Dictionary>();
  Instance db = core::ChainDatabase(32, dict);
  const std::string path = TempPath("chase.facts");
  ASSERT_TRUE(chase::SaveFacts(db, path).ok());

  auto fresh_dict = std::make_shared<Dictionary>();
  auto loaded = chase::LoadFacts(path, fresh_dict);
  ASSERT_TRUE(loaded.ok());
  auto program = core::TransitiveClosureProgram(fresh_dict);
  chase::ChaseStats loaded_stats;
  ASSERT_TRUE(RunChase(program, &*loaded, {}, &loaded_stats).ok());

  auto reference_program = core::TransitiveClosureProgram(dict);
  chase::ChaseStats reference_stats;
  ASSERT_TRUE(RunChase(reference_program, &db, {}, &reference_stats).ok());
  EXPECT_EQ(loaded_stats.facts_derived, reference_stats.facts_derived);
  EXPECT_EQ(loaded->ToString(), db.ToString());
}

TEST(FactDumpTest, RejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(
      chase::LoadFacts(TempPath("nonexistent.facts"),
                       std::make_shared<Dictionary>())
          .ok());

  const std::string bad_magic = TempPath("bad_magic.facts");
  {
    std::ofstream out(bad_magic, std::ios::binary);
    out << "NOTAFACTDUMP and then some bytes";
  }
  EXPECT_FALSE(
      chase::LoadFacts(bad_magic, std::make_shared<Dictionary>()).ok());

  // A valid dump truncated mid-stream must fail, not mis-load.
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  for (int i = 0; i < 50; ++i) {
    db.AddFact("edge", {"a" + std::to_string(i), "b" + std::to_string(i)});
  }
  const std::string full = TempPath("full.facts");
  ASSERT_TRUE(chase::SaveFacts(db, full).ok());
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string truncated = TempPath("truncated.facts");
  {
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() * 2 / 3));
  }
  EXPECT_FALSE(
      chase::LoadFacts(truncated, std::make_shared<Dictionary>()).ok());
}

}  // namespace
}  // namespace triq

// The join-executor layer: hash-probe vs merge-join equivalence.
//
// The access-path planner (match.cc) may replace posting probes with a
// sorted driver + galloping cursor; nothing about the produced matches
// may change. These tests pin that down at the MatchBody level and
// end-to-end through the chase, on hand-built joins and on randomized
// programs with negation and repeated predicates.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "core/workloads.h"
#include "datalog/parser.h"

namespace triq {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

/// All matches of `rule`'s body as rendered bindings, sorted — the
/// enumeration-order-free fingerprint of a MatchBody pass.
std::vector<std::string> MatchFingerprint(const datalog::Rule& rule,
                                          const chase::Instance& db,
                                          chase::MatchOptions options) {
  std::vector<std::string> out;
  Status status =
      MatchBody(rule, db, options, [&](const chase::Match& match) {
        std::vector<std::string> parts;
        for (const auto& [var, val] : match.binding->entries()) {
          parts.push_back(TermToString(var, db.dict()) + "=" +
                          TermToString(val, db.dict()));
        }
        std::sort(parts.begin(), parts.end());
        std::string line;
        for (const std::string& p : parts) line += p + " ";
        out.push_back(line);
        return true;
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  std::sort(out.begin(), out.end());
  return out;
}

datalog::Rule ParseR(std::string_view text, Dictionary* dict) {
  auto rule = datalog::ParseRule(text, dict);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return std::move(rule).value();
}

TEST(MergeJoinMatchTest, StrategiesEnumerateTheSameMatches) {
  auto dict = Dict();
  chase::Instance db(dict);
  std::mt19937 rng(11);
  // Dense enough that the driver window clears the kAuto threshold and
  // values repeat on both sides of the join.
  for (int i = 0; i < 120; ++i) {
    db.AddFact("e", {"a" + std::to_string(rng() % 12),
                     "b" + std::to_string(rng() % 12)});
    db.AddFact("f", {"b" + std::to_string(rng() % 12),
                     "c" + std::to_string(rng() % 12)});
  }
  datalog::Rule rule =
      ParseR("e(?X, ?Y), f(?Y, ?Z) -> g(?X, ?Z)", dict.get());
  chase::MatchOptions hash;
  hash.join_strategy = chase::JoinStrategy::kHash;
  chase::MatchOptions merge;
  merge.join_strategy = chase::JoinStrategy::kMerge;
  chase::MatchOptions leapfrog;
  leapfrog.join_strategy = chase::JoinStrategy::kLeapfrog;
  chase::MatchOptions automatic;  // default
  auto expected = MatchFingerprint(rule, db, hash);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(MatchFingerprint(rule, db, merge), expected);
  EXPECT_EQ(MatchFingerprint(rule, db, leapfrog), expected);
  EXPECT_EQ(MatchFingerprint(rule, db, automatic), expected);
}

/// The leapfrog residual on the workload it was built for: a 3-atom
/// cyclic (triangle) rule, where kAuto engages it. All strategies
/// enumerate the identical match set, with and without delta/atom_end
/// windows on the driver.
TEST(MergeJoinMatchTest, TriangleStrategiesAgreeUnderWindows) {
  auto dict = Dict();
  chase::Instance db(dict);
  std::mt19937 rng(23);
  for (int i = 0; i < 300; ++i) {
    db.AddFact("e", {"n" + std::to_string(rng() % 24),
                     "n" + std::to_string(rng() % 24)});
  }
  datalog::Rule rule =
      ParseR("e(?X, ?Y), e(?Y, ?Z), e(?Z, ?X) -> t(?X, ?Z)", dict.get());
  chase::MatchOptions base;
  for (size_t delta_begin : {chase::kNoTupleLimit, size_t{0}, size_t{150}}) {
    chase::MatchOptions opts = base;
    if (delta_begin != chase::kNoTupleLimit) {
      opts.delta_body_index = 0;
      opts.delta_begin = delta_begin;
      opts.delta_end = delta_begin + 120;
      opts.atom_end = {chase::kNoTupleLimit, 280, 260};
    }
    chase::MatchOptions hash = opts;
    hash.join_strategy = chase::JoinStrategy::kHash;
    chase::MatchOptions merge = opts;
    merge.join_strategy = chase::JoinStrategy::kMerge;
    chase::MatchOptions leapfrog = opts;
    leapfrog.join_strategy = chase::JoinStrategy::kLeapfrog;
    chase::MatchOptions automatic = opts;  // kAuto: engages the leapfrog
    auto expected = MatchFingerprint(rule, db, hash);
    EXPECT_FALSE(expected.empty());
    EXPECT_EQ(MatchFingerprint(rule, db, merge), expected)
        << "delta_begin=" << delta_begin;
    EXPECT_EQ(MatchFingerprint(rule, db, leapfrog), expected)
        << "delta_begin=" << delta_begin;
    EXPECT_EQ(MatchFingerprint(rule, db, automatic), expected)
        << "delta_begin=" << delta_begin;
  }
}

/// A 4-atom star join (shared center variable) through the leapfrog
/// residual, with a repeated predicate and a constant restriction.
TEST(MergeJoinMatchTest, StarJoinStrategiesAgree) {
  auto dict = Dict();
  chase::Instance db(dict);
  std::mt19937 rng(31);
  for (int i = 0; i < 200; ++i) {
    db.AddFact("a", {"c" + std::to_string(rng() % 8),
                     "x" + std::to_string(rng() % 40)});
    db.AddFact("b", {"c" + std::to_string(rng() % 8),
                     "y" + std::to_string(rng() % 6)});
  }
  datalog::Rule rule = ParseR(
      "a(?C, ?X), b(?C, ?Y), a(?C, ?Z), b(?C, y3) -> s(?X, ?Y, ?Z)",
      dict.get());
  chase::MatchOptions hash;
  hash.join_strategy = chase::JoinStrategy::kHash;
  chase::MatchOptions leapfrog;
  leapfrog.join_strategy = chase::JoinStrategy::kLeapfrog;
  chase::MatchOptions automatic;
  auto expected = MatchFingerprint(rule, db, hash);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(MatchFingerprint(rule, db, leapfrog), expected);
  EXPECT_EQ(MatchFingerprint(rule, db, automatic), expected);
}

TEST(MergeJoinMatchTest, StrategiesRespectDeltaAndAtomEndWindows) {
  auto dict = Dict();
  chase::Instance db(dict);
  for (int i = 0; i < 80; ++i) {
    db.AddFact("e", {"v" + std::to_string(i % 10),
                     "v" + std::to_string((i + 1) % 10) + "_" +
                         std::to_string(i)});
    db.AddFact("e", {"v" + std::to_string(i % 10) + "_x",
                     "v" + std::to_string((i * 3) % 10)});
  }
  datalog::Rule rule =
      ParseR("e(?X, ?Y), e(?Y, ?Z) -> p(?X, ?Z)", dict.get());
  for (size_t delta_begin : {0u, 40u, 100u}) {
    chase::MatchOptions hash;
    hash.delta_body_index = 0;
    hash.delta_begin = delta_begin;
    hash.delta_end = delta_begin + 50;
    hash.atom_end = {chase::kNoTupleLimit, 120};
    chase::MatchOptions merge = hash;
    hash.join_strategy = chase::JoinStrategy::kHash;
    merge.join_strategy = chase::JoinStrategy::kMerge;
    EXPECT_EQ(MatchFingerprint(rule, db, merge),
              MatchFingerprint(rule, db, hash))
        << "delta_begin=" << delta_begin;
  }
}

/// Generates a random plain-Datalog program with stratified negation
/// over a small schema, plus a random database (the property_test
/// generator shape, denser so merge paths engage).
class RandomDatalog {
 public:
  explicit RandomDatalog(uint64_t seed) : rng_(seed) {}

  std::string ProgramText(int rules) {
    std::string out;
    for (int r = 0; r < rules; ++r) {
      int head = static_cast<int>(rng_() % 4);
      std::string body;
      int atoms = 1 + static_cast<int>(rng_() % 2);
      std::vector<std::string> vars = {"?X", "?Y", "?Z"};
      for (int a = 0; a < atoms; ++a) {
        if (a > 0) body += ", ";
        body += RandomEdbAtom(vars);
      }
      if (head > 0 && (rng_() % 3) == 0) {
        body += ", not p" + std::to_string(rng_() % head) + "(?X)";
      }
      if (head > 0 && (rng_() % 2) == 0) {
        body += ", p" + std::to_string(rng_() % (head + 1)) + "(?Y)";
      }
      out += body + " -> p" + std::to_string(head) + "(?X) .\n";
    }
    return out;
  }

  void FillDatabase(chase::Instance* db, int facts) {
    for (int i = 0; i < facts; ++i) {
      db->AddFact(rng_() % 2 == 0 ? "e0" : "e1", {Constant(), Constant()});
    }
    db->AddFact("p0", {Constant()});
  }

 private:
  std::string Constant() {
    return std::string(1, static_cast<char>('a' + rng_() % 5));
  }
  std::string RandomEdbAtom(const std::vector<std::string>& vars) {
    std::string pred = rng_() % 2 == 0 ? "e0" : "e1";
    std::string v1 = vars[rng_() % vars.size()];
    std::string v2 = vars[rng_() % vars.size()];
    return pred + "(?X, " + (rng_() % 2 == 0 ? v1 : v2) + ")";
  }

  std::mt19937_64 rng_;
};

class JoinStrategySweep : public ::testing::TestWithParam<int> {};

/// The full ablation grid on random stratified programs: every join
/// strategy × delta partitioning × threads {1, 4} fixes the instance
/// the naive fixpoint fixes (plain Datalog: exact ToString, so tuple
/// order too), and for a fixed partitioning mode the match counts
/// (`rule_firings`, `facts_derived`) are identical across strategies
/// and thread counts — the match SET of every pass is
/// strategy-independent.
TEST_P(JoinStrategySweep, StrategyGridEquivalence) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomDatalog gen(seed);
  auto dict = Dict();
  auto program = datalog::ParseProgram(gen.ProgramText(6), dict);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  chase::Instance db(dict);
  RandomDatalog filler(seed + 7000);
  filler.FillDatabase(&db, 60);  // dense: merge paths engage under kAuto

  chase::ChaseOptions naive;
  naive.seminaive = false;
  naive.partition_deltas = false;
  naive.join_strategy = chase::JoinStrategy::kHash;
  chase::Instance naive_db = db.CloneFacts();
  ASSERT_TRUE(RunChase(*program, &naive_db, naive).ok());
  const std::string expected = naive_db.ToString();

  const chase::JoinStrategy strategies[] = {
      chase::JoinStrategy::kHash, chase::JoinStrategy::kMerge,
      chase::JoinStrategy::kLeapfrog, chase::JoinStrategy::kAuto};
  for (bool partition : {true, false}) {
    // Reference counters for this partitioning mode: hash, 1 thread.
    chase::ChaseStats ref_stats;
    bool have_ref = false;
    for (chase::JoinStrategy strategy : strategies) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        chase::ChaseOptions options;
        options.partition_deltas = partition;
        options.join_strategy = strategy;
        options.num_threads = threads;
        chase::Instance run_db = db.CloneFacts();
        chase::ChaseStats stats;
        ASSERT_TRUE(RunChase(*program, &run_db, options, &stats).ok());
        std::string label = "strategy=" +
                            std::to_string(static_cast<int>(strategy)) +
                            " partition=" + std::to_string(partition) +
                            " threads=" + std::to_string(threads);
        EXPECT_EQ(run_db.ToString(), expected)
            << label << "\n" << program->ToString();
        if (!have_ref) {
          ref_stats = stats;
          have_ref = true;
        } else {
          EXPECT_EQ(stats.rule_firings, ref_stats.rule_firings) << label;
          EXPECT_EQ(stats.facts_derived, ref_stats.facts_derived) << label;
          EXPECT_EQ(stats.rounds, ref_stats.rounds) << label;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinStrategySweep, ::testing::Range(1, 21));

/// Triangle closure end-to-end through the chase: the 3-atom cyclic
/// rule that kAuto routes to the leapfrog operator, on a random graph,
/// across all strategies and thread counts — identical instances and
/// exact counter equality (plain Datalog).
TEST(MergeJoinChaseTest, TriangleAgreesAcrossStrategiesAndThreads) {
  auto dict = Dict();
  auto program = datalog::ParseProgram(
      "e(?X, ?Y), e(?Y, ?Z), e(?Z, ?X) -> tri(?X, ?Y, ?Z) .", dict);
  ASSERT_TRUE(program.ok());
  chase::Instance db(dict);
  std::mt19937 rng(5);
  for (int i = 0; i < 600; ++i) {
    db.AddFact("e", {"n" + std::to_string(rng() % 40),
                     "n" + std::to_string(rng() % 40)});
  }

  chase::ChaseOptions hash;
  hash.join_strategy = chase::JoinStrategy::kHash;
  chase::Instance hash_db = db.CloneFacts();
  chase::ChaseStats hash_stats;
  ASSERT_TRUE(RunChase(*program, &hash_db, hash, &hash_stats).ok());
  ASSERT_GT(hash_db.Find("tri")->size(), 0u);

  for (chase::JoinStrategy strategy :
       {chase::JoinStrategy::kMerge, chase::JoinStrategy::kLeapfrog,
        chase::JoinStrategy::kAuto}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      chase::ChaseOptions options;
      options.join_strategy = strategy;
      options.num_threads = threads;
      chase::Instance run_db = db.CloneFacts();
      chase::ChaseStats stats;
      ASSERT_TRUE(RunChase(*program, &run_db, options, &stats).ok());
      std::string label = "strategy=" +
                          std::to_string(static_cast<int>(strategy)) +
                          " threads=" + std::to_string(threads);
      EXPECT_EQ(run_db.ToString(), hash_db.ToString()) << label;
      EXPECT_EQ(stats.rule_firings, hash_stats.rule_firings) << label;
      EXPECT_EQ(stats.facts_derived, hash_stats.facts_derived) << label;
    }
  }
}

/// Transitive closure on a chain — the workload the merge join was
/// built for — derives the same closure with the same exact counters
/// under every strategy.
TEST(MergeJoinChaseTest, TransitiveClosureAgreesAcrossStrategies) {
  constexpr int kChain = 64;  // > kAutoMergeMinWindow: kAuto merges too
  auto dict = Dict();
  auto program = core::TransitiveClosureProgram(dict);
  chase::Instance db = core::ChainDatabase(kChain, dict);

  chase::ChaseOptions hash;
  hash.join_strategy = chase::JoinStrategy::kHash;
  chase::ChaseOptions merge;
  merge.join_strategy = chase::JoinStrategy::kMerge;

  chase::Instance hash_db = db.CloneFacts();
  chase::Instance merge_db = db.CloneFacts();
  chase::ChaseStats hash_stats, merge_stats;
  ASSERT_TRUE(RunChase(program, &hash_db, hash, &hash_stats).ok());
  ASSERT_TRUE(RunChase(program, &merge_db, merge, &merge_stats).ok());
  EXPECT_EQ(merge_db.Find("tc")->size(),
            static_cast<size_t>(kChain) * (kChain + 1) / 2);
  EXPECT_EQ(merge_db.ToString(), hash_db.ToString());
  EXPECT_EQ(merge_stats.rule_firings, hash_stats.rule_firings);
  EXPECT_EQ(merge_stats.facts_derived, hash_stats.facts_derived);
  EXPECT_EQ(merge_stats.rounds, hash_stats.rounds);
}

/// With old/delta/all partitioning, the exact firing count of the
/// repeated-predicate join (property_test pins 14 on a 4-edge chain)
/// is preserved under forced merge join.
TEST(MergeJoinChaseTest, RepeatedPredicateFiringsStayExact) {
  auto dict = Dict();
  auto program = datalog::ParseProgram(R"(
    e(?X, ?Y) -> t(?X, ?Y) .
    t(?X, ?Y), t(?Y, ?Z) -> t(?X, ?Z) .
  )",
                                       dict);
  ASSERT_TRUE(program.ok());
  chase::Instance db(dict);
  for (int i = 0; i < 4; ++i) {
    db.AddFact("e", {"v" + std::to_string(i), "v" + std::to_string(i + 1)});
  }
  chase::ChaseOptions merge;
  merge.join_strategy = chase::JoinStrategy::kMerge;
  chase::ChaseStats stats;
  ASSERT_TRUE(RunChase(*program, &db, merge, &stats).ok());
  EXPECT_EQ(db.Find("t")->size(), 10u);
  EXPECT_EQ(stats.rule_firings, 14u);
}

}  // namespace
}  // namespace triq

#include <gtest/gtest.h>

#include <memory>

#include "datalog/parser.h"
#include "datalog/positions.h"

namespace triq::datalog {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

// Example 4.1 of the paper.
constexpr std::string_view kExample41 = R"(
  p(?X, ?Y), s(?Y, ?Z) -> exists ?W t(?Y, ?X, ?W) .
  t(?X, ?Y, ?Z) -> exists ?W p(?W, ?Z) .
  t(?X, ?Y, ?Z) -> s(?X, ?Y) .
)";

class Example41Test : public ::testing::Test {
 protected:
  Example41Test() : dict_(Dict()) {
    auto program = ParseProgram(kExample41, dict_);
    EXPECT_TRUE(program.ok());
    program_ = std::make_unique<Program>(std::move(program).value());
    analysis_ = std::make_unique<PositionAnalysis>(*program_);
  }

  Position Pos(const char* pred, uint32_t i) {
    return Position{dict_->Intern(pred), i};
  }

  std::shared_ptr<Dictionary> dict_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<PositionAnalysis> analysis_;
};

TEST_F(Example41Test, ExistentialPositionsAreAffected) {
  // ∃?W in rule 1 -> t[3]; ∃?W in rule 2 -> p[1].
  EXPECT_TRUE(analysis_->IsAffected(Pos("t", 2)));
  EXPECT_TRUE(analysis_->IsAffected(Pos("p", 0)));
}

TEST_F(Example41Test, PropagatedPositionsAreAffected) {
  // ?X of rule 1 occurs only at affected p[1], heads into t[2] -> t[2]
  // (0-based index 1) is affected; similarly p[2] and s[2].
  EXPECT_TRUE(analysis_->IsAffected(Pos("t", 1)));
  EXPECT_TRUE(analysis_->IsAffected(Pos("p", 1)));
  EXPECT_TRUE(analysis_->IsAffected(Pos("s", 1)));
}

TEST_F(Example41Test, T1IsNotAffected) {
  // ?Y of rule 1 also occurs at s[1], which is non-affected, so t[1]
  // (0-based index 0) stays non-affected — the paper's key subtlety.
  EXPECT_FALSE(analysis_->IsAffected(Pos("t", 0)));
  EXPECT_FALSE(analysis_->IsAffected(Pos("s", 0)));
}

TEST_F(Example41Test, ClassifiesRuleOneVariables) {
  const Rule& rule = program_->rules()[0];  // p(X,Y), s(Y,Z) -> ∃W t(Y,X,W)
  VariableClasses classes = analysis_->Classify(rule);
  Term x = Term::Variable(dict_->Intern("?X"));
  Term y = Term::Variable(dict_->Intern("?Y"));
  Term z = Term::Variable(dict_->Intern("?Z"));
  // ?X occurs only at affected p[1] -> harmful and (head) dangerous.
  EXPECT_TRUE(classes.IsDangerous(x));
  // ?Y occurs at s[1] (non-affected) -> harmless.
  EXPECT_TRUE(classes.IsHarmless(y));
  // ?Z occurs at s[2] (affected) -> harmful, but not in head.
  EXPECT_TRUE(classes.IsHarmful(z));
  EXPECT_FALSE(classes.IsDangerous(z));
}

TEST(PositionsTest, PlainDatalogHasNoAffectedPositions) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    edge(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  PositionAnalysis analysis(*program);
  EXPECT_TRUE(analysis.affected().empty());
  VariableClasses classes = analysis.Classify(program->rules()[1]);
  EXPECT_TRUE(classes.harmful.empty());
  EXPECT_TRUE(classes.dangerous.empty());
  EXPECT_EQ(classes.harmless.size(), 3u);
}

TEST(PositionsTest, ExistentialFeedsRecursionAffectsEverything) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    start(?X) -> exists ?Y n(?X, ?Y) .
    n(?X, ?Y) -> n(?Y, ?X) .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  PositionAnalysis analysis(*program);
  EXPECT_TRUE(analysis.IsAffected(Position{dict->Intern("n"), 1}));
  // ?Y flips into position 0 via the swap rule.
  EXPECT_TRUE(analysis.IsAffected(Position{dict->Intern("n"), 0}));
}

TEST(PositionsTest, ClassificationIgnoresNegatedOccurrences) {
  auto dict = Dict();
  // ?Y's only *positive* occurrence is at the affected position s[2];
  // its occurrence under negation must not make it harmless.
  auto program = ParseProgram(R"(
    p(?X) -> exists ?Y s(?X, ?Y) .
    s(?X, ?Y), not blocked(?Y) -> out(?Y) .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  Program positive = program->PositiveVersion();
  PositionAnalysis analysis(positive);
  VariableClasses classes = analysis.Classify(program->rules()[1]);
  Term y = Term::Variable(dict->Intern("?Y"));
  EXPECT_TRUE(classes.IsDangerous(y));
}

}  // namespace
}  // namespace triq::datalog

#include <gtest/gtest.h>

#include <memory>

#include "owl/generator.h"
#include "owl/rdf_mapping.h"
#include "sparql/parser.h"
#include "translate/owl2ql_program.h"
#include "translate/sparql_to_datalog.h"

namespace triq::translate {
namespace {

using sparql::GraphPattern;
using sparql::MappingSet;

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

std::unique_ptr<GraphPattern> Parse(std::string_view text, Dictionary* dict) {
  auto pattern = sparql::ParsePattern(text, dict);
  EXPECT_TRUE(pattern.ok()) << pattern.status().ToString();
  return std::move(pattern).value();
}

Result<MappingSet> EvalUnder(const GraphPattern& pattern,
                             const rdf::Graph& graph, Regime regime,
                             std::shared_ptr<Dictionary> dict) {
  TranslationOptions options;
  options.regime = regime;
  auto translated = TranslatePattern(pattern, std::move(dict), options);
  if (!translated.ok()) return translated.status();
  return EvaluateTranslated(*translated, graph);
}

/// The Section 5.2 example graph (14): dog is an animal; every animal
/// eats something.
rdf::Graph AnimalsGraph(std::shared_ptr<Dictionary> dict) {
  owl::Ontology o;
  SymbolId animal = dict->Intern("animal");
  SymbolId eats = dict->Intern("eats");
  o.DeclareClass(animal);
  o.DeclareProperty(eats);
  o.AddClassAssertion(owl::BasicClass::Named(animal), dict->Intern("dog"));
  o.AddSubClassOf(owl::BasicClass::Named(animal),
                  owl::BasicClass::Exists(owl::BasicProperty{eats, false}));
  rdf::Graph g(std::move(dict));
  owl::OntologyToGraph(o, &g);
  return g;
}

TEST(EntailmentTest, ActiveDomainMissesInventedFiller) {
  // Under J·K^U the pattern (?X, eats, _:B) has an empty answer: the
  // invented filler is not a graph constant (Section 5.2's example).
  auto dict = Dict();
  rdf::Graph g = AnimalsGraph(dict);
  auto p = Parse("{ ?X eats _:B }", dict.get());
  auto result = EvalUnder(*p, g, Regime::kActiveDomain, dict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 0u);
}

TEST(EntailmentTest, ActiveDomainFindsRestrictionClass) {
  // The paper's workaround: (?X, rdf:type, ∃eats) does find dog.
  auto dict = Dict();
  rdf::Graph g = AnimalsGraph(dict);
  auto p = Parse("{ ?X rdf:type some:eats }", dict.get());
  auto result = EvalUnder(*p, g, Regime::kActiveDomain, dict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(dict->Text(result->mappings()[0].Get(dict->Intern("?X"))),
            "dog");
}

TEST(EntailmentTest, AllSemanticsFindsInventedFiller) {
  // Section 5.3: dropping the active-domain restriction, _:B may take
  // the invented value, so dog is an answer of (?X, eats, _:B).
  auto dict = Dict();
  rdf::Graph g = AnimalsGraph(dict);
  auto p = Parse("{ ?X eats _:B }", dict.get());
  auto result = EvalUnder(*p, g, Regime::kAll, dict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(dict->Text(result->mappings()[0].Get(dict->Intern("?X"))),
            "dog");
}

TEST(EntailmentTest, HerbivoresExample) {
  // Section 5.3's motivating query: animals that eat some plant
  // material, where plant-material-hood is only implied by the axiom
  // ∃eats⁻ ⊑ plant_material.
  auto dict = Dict();
  owl::Ontology o;
  SymbolId animal = dict->Intern("animal");
  SymbolId plant = dict->Intern("plant_material");
  SymbolId eats = dict->Intern("eats");
  o.DeclareClass(animal);
  o.DeclareClass(plant);
  o.DeclareProperty(eats);
  o.AddClassAssertion(owl::BasicClass::Named(animal), dict->Intern("dog"));
  o.AddSubClassOf(owl::BasicClass::Named(animal),
                  owl::BasicClass::Exists(owl::BasicProperty{eats, false}));
  o.AddSubClassOf(owl::BasicClass::Exists(owl::BasicProperty{eats, true}),
                  owl::BasicClass::Named(plant));
  rdf::Graph g(dict);
  owl::OntologyToGraph(o, &g);

  auto q = Parse("{ ?X eats _:B . _:B rdf:type plant_material }", dict.get());
  auto all = EvalUnder(*q, g, Regime::kAll, dict);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ(dict->Text(all->mappings()[0].Get(dict->Intern("?X"))), "dog");

  auto active = EvalUnder(*q, g, Regime::kActiveDomain, dict);
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(active->size(), 0u);  // no concrete witness in G
}

TEST(EntailmentTest, SubPropertyReasoning) {
  auto dict = Dict();
  owl::Ontology o;
  SymbolId owns = dict->Intern("owns");
  SymbolId has = dict->Intern("has");
  o.DeclareProperty(owns);
  o.DeclareProperty(has);
  o.AddSubPropertyOf(owl::BasicProperty{owns, false},
                     owl::BasicProperty{has, false});
  o.AddPropertyAssertion(owns, dict->Intern("ann"), dict->Intern("car"));
  rdf::Graph g(dict);
  owl::OntologyToGraph(o, &g);

  auto p = Parse("{ ann has ?X }", dict.get());
  auto result = EvalUnder(*p, g, Regime::kActiveDomain, dict);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(dict->Text(result->mappings()[0].Get(dict->Intern("?X"))),
            "car");
}

TEST(EntailmentTest, InversePropertyReasoning) {
  auto dict = Dict();
  owl::Ontology o;
  SymbolId part_of = dict->Intern("partOfP");
  SymbolId has_part = dict->Intern("hasPart");
  o.DeclareProperty(part_of);
  o.DeclareProperty(has_part);
  // partOfP ⊑ hasPart⁻.
  o.AddSubPropertyOf(owl::BasicProperty{part_of, false},
                     owl::BasicProperty{has_part, true});
  o.AddPropertyAssertion(part_of, dict->Intern("wheel"),
                         dict->Intern("car"));
  rdf::Graph g(dict);
  owl::OntologyToGraph(o, &g);

  auto p = Parse("{ car hasPart ?X }", dict.get());
  auto result = EvalUnder(*p, g, Regime::kActiveDomain, dict);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(dict->Text(result->mappings()[0].Get(dict->Intern("?X"))),
            "wheel");
}

TEST(EntailmentTest, SubclassChainPropagatesTypes) {
  auto dict = Dict();
  owl::Ontology o = owl::ChainOntology(6, dict.get());
  rdf::Graph g(dict);
  owl::OntologyToGraph(o, &g);
  // c gets a p-filler (a0 ⊑ ∃p); the filler is typed a1 ⊑ ... ⊑ a6.
  auto p = Parse("{ c p _:B . _:B rdf:type a6 }", dict.get());
  auto all = EvalUnder(*p, g, Regime::kAll, dict);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->size(), 1u);
}

TEST(EntailmentTest, DisjointnessMakesGraphInconsistent) {
  auto dict = Dict();
  owl::Ontology o;
  SymbolId cat = dict->Intern("cat");
  SymbolId dog = dict->Intern("dog_cls");
  o.DeclareClass(cat);
  o.DeclareClass(dog);
  o.AddDisjointClasses(owl::BasicClass::Named(cat),
                       owl::BasicClass::Named(dog));
  o.AddClassAssertion(owl::BasicClass::Named(cat), dict->Intern("felix"));
  o.AddClassAssertion(owl::BasicClass::Named(dog), dict->Intern("felix"));
  rdf::Graph g(dict);
  owl::OntologyToGraph(o, &g);

  auto p = Parse("{ ?X rdf:type cat }", dict.get());
  auto result = EvalUnder(*p, g, Regime::kActiveDomain, dict);
  // The ⊤ answer (Section 3.2): surfaced as kInconsistent.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInconsistent);
}

TEST(EntailmentTest, ConsistentDisjointnessIsFine) {
  auto dict = Dict();
  owl::Ontology o;
  SymbolId cat = dict->Intern("cat");
  SymbolId dog = dict->Intern("dog_cls");
  o.DeclareClass(cat);
  o.DeclareClass(dog);
  o.AddDisjointClasses(owl::BasicClass::Named(cat),
                       owl::BasicClass::Named(dog));
  o.AddClassAssertion(owl::BasicClass::Named(cat), dict->Intern("felix"));
  o.AddClassAssertion(owl::BasicClass::Named(dog), dict->Intern("rex"));
  rdf::Graph g(dict);
  owl::OntologyToGraph(o, &g);
  auto p = Parse("{ ?X rdf:type cat }", dict.get());
  auto result = EvalUnder(*p, g, Regime::kActiveDomain, dict);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(EntailmentTest, AlgebraOperatorsComposeWithRegime) {
  // Theorem 5.3 applies the regime at the BGP level and the standard
  // algebra above it: check UNION and OPT compose.
  auto dict = Dict();
  rdf::Graph g = AnimalsGraph(dict);
  auto p = Parse(
      "UNION({ ?X eats _:B }, { ?X rdf:type animal })", dict.get());
  auto all = EvalUnder(*p, g, Regime::kAll, dict);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);  // dog via both arms, deduplicated
}

TEST(EntailmentTest, Owl2QlProgramIsFixed) {
  // The black-box property stressed in Section 5.2: the regime program
  // text does not depend on the query.
  std::string_view text1 = Owl2QlCoreRuleText();
  std::string_view text2 = Owl2QlCoreRuleText();
  EXPECT_EQ(text1.data(), text2.data());
  auto dict = Dict();
  datalog::Program program = BuildOwl2QlCoreProgram(dict);
  EXPECT_EQ(program.size(), 25u);
}

}  // namespace
}  // namespace triq::translate

// Shared helpers for the gtest suites. Previously copy-pasted into each
// test file; include this instead and pull the names in with
// using-declarations:
//
//   #include "test_util.h"
//   ...
//   using triq::test::CountFacts;
//   using triq::test::Dict;
//   using triq::test::Parse;
#ifndef TRIQ_TESTS_TEST_UTIL_H_
#define TRIQ_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string_view>
#include <utility>

#include "chase/instance.h"
#include "chase/relation.h"
#include "common/dictionary.h"
#include "datalog/parser.h"
#include "datalog/program.h"

namespace triq::test {

/// A fresh dictionary for one test's graph/program/instance family.
inline std::shared_ptr<Dictionary> Dict() {
  return std::make_shared<Dictionary>();
}

/// Parses a rule program, failing the test (with the parser's message)
/// on error. Returns an empty program in that case so the test can
/// continue to its own assertions.
inline datalog::Program Parse(std::string_view text,
                              std::shared_ptr<Dictionary> dict) {
  auto program = datalog::ParseProgram(text, dict);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  if (!program.ok()) return datalog::Program(std::move(dict));
  return std::move(program).value();
}

/// Number of facts stored for `pred`, 0 if the predicate is unknown.
inline size_t CountFacts(const chase::Instance& db, std::string_view pred) {
  const chase::Relation* rel = db.Find(pred);
  return rel == nullptr ? 0 : rel->size();
}

}  // namespace triq::test

#endif  // TRIQ_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "chase/instance.h"
#include "chase/relation.h"
#include "rdf/graph.h"

namespace triq::chase {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  Tuple t = {Term::Constant(1), Term::Constant(2)};
  uint32_t idx = 99;
  EXPECT_TRUE(rel.Insert(t, &idx));
  EXPECT_EQ(idx, 0u);
  EXPECT_FALSE(rel.Insert(t, &idx));
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, PostingsPerPosition) {
  Relation rel(2);
  rel.Insert({Term::Constant(1), Term::Constant(2)});
  rel.Insert({Term::Constant(1), Term::Constant(3)});
  rel.Insert({Term::Constant(4), Term::Constant(2)});
  const auto* by_first = rel.Postings(0, Term::Constant(1));
  ASSERT_NE(by_first, nullptr);
  EXPECT_EQ(by_first->size(), 2u);
  const auto* by_second = rel.Postings(1, Term::Constant(2));
  ASSERT_NE(by_second, nullptr);
  EXPECT_EQ(by_second->size(), 2u);
  EXPECT_EQ(rel.Postings(0, Term::Constant(42)), nullptr);
}

TEST(RelationTest, NullsAreIndexedLikeConstants) {
  Relation rel(1);
  rel.Insert({Term::Null(7)});
  const auto* postings = rel.Postings(0, Term::Null(7));
  ASSERT_NE(postings, nullptr);
  EXPECT_EQ(postings->size(), 1u);
  EXPECT_TRUE(rel.Contains({Term::Null(7)}));
  EXPECT_FALSE(rel.Contains({Term::Null(8)}));
}

TEST(InstanceTest, AddFactCreatesRelations) {
  auto dict = Dict();
  Instance db(dict);
  EXPECT_TRUE(db.AddFact("p", {"a", "b"}));
  EXPECT_FALSE(db.AddFact("p", {"a", "b"}));
  EXPECT_EQ(db.TotalFacts(), 1u);
  EXPECT_NE(db.Find(dict->Intern("p")), nullptr);
  EXPECT_EQ(db.Find(dict->Intern("q")), nullptr);
}

TEST(InstanceTest, NullAllocationTracksDepth) {
  auto dict = Dict();
  Instance db(dict);
  Term z0 = db.AllocateNull(1);
  Term z1 = db.AllocateNull(5);
  EXPECT_NE(z0, z1);
  EXPECT_EQ(db.NullDepth(z0), 1u);
  EXPECT_EQ(db.NullDepth(z1), 5u);
  EXPECT_EQ(db.null_count(), 2u);
}

TEST(InstanceTest, GroundFactsFilterNulls) {
  auto dict = Dict();
  Instance db(dict);
  db.AddFact("p", {"a"});
  Term z = db.AllocateNull(1);
  db.AddFact(dict->Intern("q"), {z});
  EXPECT_EQ(db.AllFacts().size(), 2u);
  EXPECT_EQ(db.GroundFacts().size(), 1u);
}

TEST(InstanceTest, ToStringIsSortedAndStable) {
  auto dict = Dict();
  Instance db(dict);
  db.AddFact("b_rel", {"x"});
  db.AddFact("a_rel", {"y"});
  EXPECT_EQ(db.ToString(), "a_rel(y)\nb_rel(x)\n");
}

TEST(InstanceTest, FromGraphLoadsTripleFacts) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("s", "p", "o");
  g.Add("s2", "p", "o2");
  Instance db = Instance::FromGraph(g);
  const Relation* triples = db.Find(dict->Intern("triple"));
  ASSERT_NE(triples, nullptr);
  EXPECT_EQ(triples->size(), 2u);
  EXPECT_EQ(triples->arity(), 3u);
}

TEST(InstanceTest, ToGraphExportsTriplesWithBlankNulls) {
  auto dict = Dict();
  Instance db(dict);
  db.AddFact("output", {"alice", "knows", "bob"});
  Term z = db.AllocateNull(1);
  db.AddFact(dict->Intern("output"),
             {z, Term::Constant(dict->Intern("likes")),
              Term::Constant(dict->Intern("tea"))});
  auto graph = db.ToGraph("output");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->size(), 2u);
  EXPECT_NE(dict->Find("_:n0"), kInvalidSymbol);
}

TEST(InstanceTest, ToGraphRejectsWrongArity) {
  auto dict = Dict();
  Instance db(dict);
  db.AddFact("pair", {"a", "b"});
  EXPECT_FALSE(db.ToGraph("pair").ok());
}

TEST(InstanceTest, ToGraphOnMissingPredicateIsEmpty) {
  auto dict = Dict();
  Instance db(dict);
  auto graph = db.ToGraph("nothing");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->size(), 0u);
}

TEST(InstanceTest, GraphRoundTrip) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("s", "p", "o");
  g.Add("a", "b", "c");
  Instance db = Instance::FromGraph(g);
  auto back = db.ToGraph("triple");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), g.size());
  for (const rdf::Triple& t : g.triples()) {
    EXPECT_TRUE(back->Contains(t));
  }
}

TEST(InstanceTest, DerivationRecordKeepsFirst) {
  auto dict = Dict();
  Instance db(dict);
  FactRef ref;
  db.AddFact(dict->Intern("p"), {Term::Constant(dict->Intern("a"))}, &ref);
  db.RecordDerivation(ref, Derivation{3, {}});
  db.RecordDerivation(ref, Derivation{9, {}});
  const Derivation* d = db.FindDerivation(ref);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rule_index, 3u);
}

}  // namespace
}  // namespace triq::chase

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "chase/instance.h"
#include "chase/relation.h"
#include "rdf/graph.h"

namespace triq::chase {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  Tuple t = {Term::Constant(1), Term::Constant(2)};
  uint32_t idx = 99;
  EXPECT_TRUE(rel.Insert(t, &idx));
  EXPECT_EQ(idx, 0u);
  EXPECT_FALSE(rel.Insert(t, &idx));
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, PostingsPerPosition) {
  Relation rel(2);
  rel.Insert({Term::Constant(1), Term::Constant(2)});
  rel.Insert({Term::Constant(1), Term::Constant(3)});
  rel.Insert({Term::Constant(4), Term::Constant(2)});
  SortedRange by_first = rel.Postings(0, Term::Constant(1));
  EXPECT_EQ(by_first.size(), 2u);
  SortedRange by_second = rel.Postings(1, Term::Constant(2));
  EXPECT_EQ(by_second.size(), 2u);
  EXPECT_TRUE(rel.Postings(0, Term::Constant(42)).empty());
}

TEST(RelationTest, NullsAreIndexedLikeConstants) {
  Relation rel(1);
  rel.Insert({Term::Null(7)});
  SortedRange postings = rel.Postings(0, Term::Null(7));
  EXPECT_EQ(postings.size(), 1u);
  EXPECT_TRUE(rel.Contains({Term::Null(7)}));
  EXPECT_FALSE(rel.Contains({Term::Null(8)}));
}

TEST(RelationTest, ColumnScanReadsOnePositionContiguously) {
  Relation rel(2);
  rel.Insert({Term::Constant(5), Term::Constant(6)});
  rel.Insert({Term::Constant(7), Term::Constant(8)});
  ColumnScan first = rel.Column(0);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], Term::Constant(5));
  EXPECT_EQ(first[1], Term::Constant(7));
  // The column really is contiguous memory.
  EXPECT_EQ(first.begin() + 2, first.end());
  ColumnScan second = rel.Column(1);
  EXPECT_EQ(second[0], Term::Constant(6));
  EXPECT_EQ(second[1], Term::Constant(8));
}

TEST(InstanceTest, AddFactCreatesRelations) {
  auto dict = Dict();
  Instance db(dict);
  EXPECT_TRUE(db.AddFact("p", {"a", "b"}));
  EXPECT_FALSE(db.AddFact("p", {"a", "b"}));
  EXPECT_EQ(db.TotalFacts(), 1u);
  EXPECT_NE(db.Find(dict->Intern("p")), nullptr);
  EXPECT_EQ(db.Find(dict->Intern("q")), nullptr);
}

TEST(RelationTest, TupleViewsReadFlatStorage) {
  Relation rel(2);
  rel.Insert({Term::Constant(1), Term::Constant(2)});
  rel.Insert({Term::Constant(3), Term::Constant(4)});
  EXPECT_EQ(rel.tuple(1)[0], Term::Constant(3));
  EXPECT_EQ(rel.tuple(0), (Tuple{Term::Constant(1), Term::Constant(2)}));
  size_t seen = 0;
  for (TupleView t : rel.tuples()) {
    EXPECT_EQ(t.size(), 2u);
    ++seen;
  }
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(rel.FindIndex(Tuple{Term::Constant(3), Term::Constant(4)}), 1u);
  EXPECT_EQ(rel.FindIndex(Tuple{Term::Constant(3), Term::Constant(5)}),
            Relation::kNotFound);
}

TEST(RelationTest, ZeroArityRelationHoldsOneEmptyTuple) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert(Tuple{}));
  EXPECT_FALSE(rel.Insert(Tuple{}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(Tuple{}));
  size_t seen = 0;
  for (TupleView t : rel.tuples()) {
    EXPECT_TRUE(t.empty());
    ++seen;
  }
  EXPECT_EQ(seen, 1u);
}

TEST(RelationTest, PostingsStayInTupleIndexOrder) {
  Relation rel(2);
  for (uint32_t i = 0; i < 100; ++i) {
    rel.Insert({Term::Constant(1 + i % 3), Term::Constant(100 + i)});
  }
  for (uint32_t v = 1; v <= 3; ++v) {
    SortedRange postings = rel.Postings(0, Term::Constant(v));
    ASSERT_FALSE(postings.empty());
    EXPECT_TRUE(std::is_sorted(postings.begin(), postings.end()));
  }
}

// Checks the sorted-permutation contract for one position: a
// permutation of every stored tuple index, ordered by column value with
// ascending tuple index as the tiebreak.
void ExpectSortedInvariants(const Relation& rel, uint32_t pos) {
  SortedRange sorted = rel.Sorted(pos);
  ASSERT_EQ(sorted.size(), rel.size());
  std::vector<bool> seen(rel.size(), false);
  const uint32_t* prev = nullptr;
  for (const uint32_t* it = sorted.begin(); it != sorted.end(); ++it) {
    ASSERT_LT(*it, rel.size());
    EXPECT_FALSE(seen[*it]) << "duplicate tuple index in permutation";
    seen[*it] = true;
    if (prev != nullptr) {
      Term a = sorted.ValueAt(prev);
      Term b = sorted.ValueAt(it);
      EXPECT_TRUE(a < b || (a == b && *prev < *it))
          << "permutation out of (value, index) order";
    }
    prev = it;
  }
}

TEST(RelationTest, SortedPermutationSurvivesInterleavedInserts) {
  // Sorted access interleaved with inserts: every sync (sort the tail,
  // merge with the prefix) must restore the full invariant.
  Relation rel(2);
  uint32_t next = 0;
  std::mt19937 rng(42);
  for (int round = 0; round < 8; ++round) {
    int batch = 1 + static_cast<int>(rng() % 13);
    for (int i = 0; i < batch; ++i) {
      rel.Insert({Term::Constant(1 + rng() % 7), Term::Constant(next++)});
    }
    ExpectSortedInvariants(rel, 0);
    if (round % 2 == 0) ExpectSortedInvariants(rel, 1);  // lagging sync
  }
  // Postings(=Equal slices) agree with a brute-force scan.
  for (uint32_t v = 1; v <= 7; ++v) {
    SortedRange postings = rel.Postings(0, Term::Constant(v));
    std::vector<uint32_t> brute;
    for (uint32_t i = 0; i < rel.size(); ++i) {
      if (rel.tuple(i)[0] == Term::Constant(v)) brute.push_back(i);
    }
    EXPECT_EQ(std::vector<uint32_t>(postings.begin(), postings.end()), brute);
  }
}

TEST(RelationTest, SortWindowSlicesDeltaWindows) {
  Relation rel(2);
  std::mt19937 rng(7);
  for (int i = 0; i < 60; ++i) {
    rel.Insert({Term::Constant(1 + rng() % 5), Term::Constant(100 + i)});
  }
  // Every window [begin, end) sorts to the brute-force (value, index)
  // order of exactly that slice — the semi-naive delta contract.
  std::vector<uint32_t> window;
  for (auto [begin, end] : std::vector<std::pair<uint32_t, uint32_t>>{
           {0, 60}, {10, 25}, {59, 60}, {30, 30}, {50, 999}}) {
    rel.SortWindow(0, begin, end, &window);
    uint32_t capped = std::min<uint32_t>(end, 60);
    std::vector<uint32_t> brute;
    for (uint32_t i = begin; i < capped; ++i) brute.push_back(i);
    std::stable_sort(brute.begin(), brute.end(),
                     [&](uint32_t a, uint32_t b) {
                       return rel.tuple(a)[0] < rel.tuple(b)[0];
                     });
    EXPECT_EQ(window, brute) << "window [" << begin << ", " << end << ")";
  }
}

TEST(RelationTest, SeekValueGallopsToLowerBound) {
  // One value column with duplicates for the cursor to group.
  Relation dup(2);
  for (uint32_t i = 0; i < 40; ++i) {
    dup.Insert({Term::Constant(2 * (i % 10)), Term::Constant(1000 + i)});
  }
  SortedRange sorted = dup.Sorted(0);
  const uint32_t* cursor = sorted.begin();
  for (uint32_t v = 0; v < 22; ++v) {  // monotone seeks incl. misses
    cursor = sorted.SeekValue(cursor, Term::Constant(v));
    const uint32_t* expected = sorted.begin();
    while (expected != sorted.end() &&
           sorted.ValueAt(expected) < Term::Constant(v)) {
      ++expected;
    }
    EXPECT_EQ(cursor, expected) << "seek to " << v;
  }
  EXPECT_EQ(sorted.SeekValue(sorted.begin(), Term::Constant(999)),
            sorted.end());
}

TEST(InstanceTest, AddFactRejectsArityMismatch) {
  auto dict = Dict();
  Instance db(dict);
  ASSERT_TRUE(db.AddFact("p", {"a", "b"}));
  // The unchecked entry point drops the wrong-width tuple instead of
  // corrupting the relation's flat storage...
  EXPECT_FALSE(db.AddFact("p", {"a"}));
  EXPECT_FALSE(db.AddFact("p", {"a", "b", "c"}));
  const Relation* rel = db.Find(dict->Intern("p"));
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->arity(), 2u);
  EXPECT_EQ(rel->size(), 1u);
  // ...and the checked one surfaces the error.
  PredicateId p = dict->Intern("p");
  auto narrow = db.AddFactChecked(p, Tuple{Term::Constant(dict->Intern("a"))});
  ASSERT_FALSE(narrow.ok());
  EXPECT_EQ(narrow.status().code(), StatusCode::kInvalidArgument);
  auto fits = db.AddFactChecked(
      p, Tuple{Term::Constant(dict->Intern("a")),
               Term::Constant(dict->Intern("z"))});
  ASSERT_TRUE(fits.ok());
  EXPECT_TRUE(*fits);
  EXPECT_EQ(db.TotalFacts(), 2u);
}

TEST(InstanceTest, NullAllocationTracksDepth) {
  auto dict = Dict();
  Instance db(dict);
  Term z0 = db.AllocateNull(1);
  Term z1 = db.AllocateNull(5);
  EXPECT_NE(z0, z1);
  EXPECT_EQ(db.NullDepth(z0), 1u);
  EXPECT_EQ(db.NullDepth(z1), 5u);
  EXPECT_EQ(db.null_count(), 2u);
}

TEST(InstanceTest, NullDepthGuardsNonNullTerms) {
  auto dict = Dict();
  Instance db(dict);
  Term z = db.AllocateNull(4);
  EXPECT_EQ(db.NullDepth(z), 4u);
  // Constants are database-level (depth 0), not an out-of-bounds read.
  EXPECT_EQ(db.NullDepth(Term::Constant(dict->Intern("a"))), 0u);
  // Unregistered null ids (e.g. backward-prover placeholders) too.
  EXPECT_EQ(db.NullDepth(Term::Null(12345)), 0u);
}

TEST(InstanceTest, GroundFactsFilterNulls) {
  auto dict = Dict();
  Instance db(dict);
  db.AddFact("p", {"a"});
  Term z = db.AllocateNull(1);
  db.AddFact(dict->Intern("q"), {z});
  EXPECT_EQ(db.AllFacts().size(), 2u);
  EXPECT_EQ(db.GroundFacts().size(), 1u);
}

TEST(InstanceTest, ToStringIsSortedAndStable) {
  auto dict = Dict();
  Instance db(dict);
  db.AddFact("b_rel", {"x"});
  db.AddFact("a_rel", {"y"});
  EXPECT_EQ(db.ToString(), "a_rel(y)\nb_rel(x)\n");
}

TEST(InstanceTest, FromGraphLoadsTripleFacts) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("s", "p", "o");
  g.Add("s2", "p", "o2");
  Instance db = Instance::FromGraph(g);
  const Relation* triples = db.Find(dict->Intern("triple"));
  ASSERT_NE(triples, nullptr);
  EXPECT_EQ(triples->size(), 2u);
  EXPECT_EQ(triples->arity(), 3u);
}

TEST(InstanceTest, ToGraphExportsTriplesWithBlankNulls) {
  auto dict = Dict();
  Instance db(dict);
  db.AddFact("output", {"alice", "knows", "bob"});
  Term z = db.AllocateNull(1);
  db.AddFact(dict->Intern("output"),
             {z, Term::Constant(dict->Intern("likes")),
              Term::Constant(dict->Intern("tea"))});
  auto graph = db.ToGraph("output");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->size(), 2u);
  EXPECT_NE(dict->Find("_:n0"), kInvalidSymbol);
}

TEST(InstanceTest, ToGraphRejectsWrongArity) {
  auto dict = Dict();
  Instance db(dict);
  db.AddFact("pair", {"a", "b"});
  EXPECT_FALSE(db.ToGraph("pair").ok());
}

TEST(InstanceTest, ToGraphOnMissingPredicateIsEmpty) {
  auto dict = Dict();
  Instance db(dict);
  auto graph = db.ToGraph("nothing");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->size(), 0u);
}

TEST(InstanceTest, GraphRoundTrip) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("s", "p", "o");
  g.Add("a", "b", "c");
  Instance db = Instance::FromGraph(g);
  auto back = db.ToGraph("triple");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), g.size());
  for (const rdf::Triple& t : g.triples()) {
    EXPECT_TRUE(back->Contains(t));
  }
}

TEST(InstanceTest, GraphRoundTripPreservesNullIdentity) {
  auto dict = Dict();
  Instance db(dict);
  Term z = db.AllocateNull(1);
  db.AddFact(dict->Intern("triple"),
             {z, Term::Constant(dict->Intern("likes")),
              Term::Constant(dict->Intern("tea"))});
  db.AddFact(dict->Intern("triple"),
             {z, Term::Constant(dict->Intern("likes")),
              Term::Constant(dict->Intern("jazz"))});
  auto graph = db.ToGraph("triple");
  ASSERT_TRUE(graph.ok());
  Instance back = Instance::FromGraph(*graph);
  const Relation* rel = back.Find(dict->Intern("triple"));
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), 2u);
  // The exported `_:n<k>` blank nodes re-enter as the same labeled
  // null, not as fresh constants.
  EXPECT_TRUE(rel->tuple(0)[0].IsNull());
  EXPECT_EQ(rel->tuple(0)[0], z);
  EXPECT_EQ(rel->tuple(1)[0], z);
  EXPECT_GE(back.null_count(), 1u);
  // And a URI that merely looks null-ish but isn't `_:n<digits>` stays
  // a constant.
  rdf::Graph g2(dict);
  g2.Add("_:n12x", "p", "o");
  g2.Add("_:b0", "p", "o");
  Instance other = Instance::FromGraph(g2);
  const Relation* rel2 = other.Find(dict->Intern("triple"));
  ASSERT_NE(rel2, nullptr);
  for (TupleView t : rel2->tuples()) EXPECT_TRUE(t[0].IsConstant());
}

TEST(InstanceTest, CloneFactsCopiesRelationsAndNulls) {
  auto dict = Dict();
  Instance db(dict);
  db.AddFact("p", {"a", "b"});
  Term z = db.AllocateNull(3);
  db.AddFact(dict->Intern("q"), {z});
  Instance copy = db.CloneFacts();
  EXPECT_EQ(copy.ToString(), db.ToString());
  EXPECT_EQ(copy.null_count(), db.null_count());
  EXPECT_EQ(copy.NullDepth(z), 3u);
  // Independent storage: growing the copy leaves the original alone.
  copy.AddFact("p", {"x", "y"});
  EXPECT_EQ(copy.TotalFacts(), 3u);
  EXPECT_EQ(db.TotalFacts(), 2u);
}

TEST(InstanceTest, DerivationRecordKeepsFirst) {
  auto dict = Dict();
  Instance db(dict);
  FactRef ref;
  db.AddFact(dict->Intern("p"), {Term::Constant(dict->Intern("a"))}, &ref);
  db.RecordDerivation(ref, Derivation{3, {}});
  db.RecordDerivation(ref, Derivation{9, {}});
  const Derivation* d = db.FindDerivation(ref);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rule_index, 3u);
}

}  // namespace
}  // namespace triq::chase

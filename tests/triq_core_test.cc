#include <gtest/gtest.h>

#include <memory>

#include "core/triq.h"
#include "core/workloads.h"
#include "datalog/parser.h"
#include "translate/owl2ql_program.h"
#include "test_util.h"

namespace triq::core {
namespace {

using test::Dict;
using test::Parse;

TEST(TriqQueryTest, RejectsAnswerPredicateInBody) {
  auto dict = Dict();
  datalog::Program program = Parse(R"(
    e(?X, ?Y) -> q(?X, ?Y) .
    e(?X, ?Y), q(?Y, ?Z) -> q(?X, ?Z) .
  )",
                                   dict);
  EXPECT_FALSE(TriqQuery::Create(std::move(program), "q").ok());
}

TEST(TriqQueryTest, EvaluateReturnsConstantTuplesOnly) {
  auto dict = Dict();
  datalog::Program program = Parse(R"(
    p(?X) -> exists ?Y s(?X, ?Y) .
    s(?X, ?Y) -> q(?X, ?Y) .
  )",
                                   dict);
  auto query = TriqQuery::Create(std::move(program), "q");
  ASSERT_TRUE(query.ok());
  chase::Instance db(dict);
  db.AddFact("p", {"a"});
  db.AddFact("s", {"b", "c"});
  auto answers = query->Evaluate(db);
  ASSERT_TRUE(answers.ok());
  // q(b,c) is all-constant; q(a, null) is filtered per Section 3.2.
  EXPECT_EQ(answers->size(), 1u);
}

TEST(TriqQueryTest, EvaluateDoesNotMutateInput) {
  auto dict = Dict();
  datalog::Program program = Parse("p(?X) -> q(?X) .", dict);
  auto query = TriqQuery::Create(std::move(program), "q");
  ASSERT_TRUE(query.ok());
  chase::Instance db(dict);
  db.AddFact("p", {"a"});
  size_t before = db.TotalFacts();
  ASSERT_TRUE(query->Evaluate(db).ok());
  EXPECT_EQ(db.TotalFacts(), before);
}

TEST(TriqQueryTest, InconsistencyIsSurfaced) {
  auto dict = Dict();
  datalog::Program program = Parse(R"(
    p(?X) -> mid(?X) .
    mid(?X) -> q(?X) .
    mid(?X), bad(?X) -> false .
  )",
                                   dict);
  auto query = TriqQuery::Create(std::move(program), "q");
  ASSERT_TRUE(query.ok());
  chase::Instance db(dict);
  db.AddFact("p", {"a"});
  db.AddFact("bad", {"a"});
  auto answers = query->Evaluate(db);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kInconsistent);
}

TEST(TriqQueryTest, HoldsChecksMembership) {
  auto dict = Dict();
  datalog::Program program = Parse(R"(
    e(?X, ?Y) -> tc(?X, ?Y) .
    e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .
    tc(?X, ?Y) -> q(?X, ?Y) .
  )",
                                   dict);
  auto query = TriqQuery::Create(std::move(program), "q");
  ASSERT_TRUE(query.ok());
  chase::Instance db(dict);
  db.AddFact("e", {"a", "b"});
  db.AddFact("e", {"b", "c"});
  EXPECT_TRUE(*query->Holds(db, {"a", "c"}));
  EXPECT_FALSE(*query->Holds(db, {"c", "a"}));
}

TEST(TriqQueryTest, ClassifyPlainDatalog) {
  auto dict = Dict();
  auto query = TriqQuery::Create(TransitiveClosureProgram(dict), "tc");
  // tc occurs in a body — wrap instead.
  datalog::Program program = Parse(R"(
    e(?X, ?Y) -> tc(?X, ?Y) .
    e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .
    tc(?X, ?Y) -> q(?X, ?Y) .
  )",
                                   dict);
  auto wrapped = TriqQuery::Create(std::move(program), "q");
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(wrapped->Classify(), Language::kDatalog);
}

TEST(TriqQueryTest, ClassifyTriqLite) {
  auto dict = Dict();
  datalog::Program program = translate::BuildOwl2QlCoreProgram(dict);
  ASSERT_TRUE(program.Append(Parse("C(?X) -> q(?X) .", dict)).ok());
  auto query = TriqQuery::Create(std::move(program), "q");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->Classify(), Language::kTriqLite10);
}

TEST(TriqQueryTest, ClassifyTriq10) {
  auto dict = Dict();
  auto query = TriqQuery::Create(CliqueProgram(dict), "yes");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->Classify(), Language::kTriq10);
}

TEST(TriqQueryTest, ClassifyUnrestricted) {
  auto dict = Dict();
  datalog::Program program = Parse(R"(
    p(?X) -> exists ?Y s(?X, ?Y) .
    s(?X1, ?Y), s(?X2, ?Z) -> q(?Y, ?Z) .
  )",
                                   dict);
  auto query = TriqQuery::Create(std::move(program), "q");
  ASSERT_TRUE(query.ok());
  // ?Y and ?Z are both dangerous but live in different atoms: no guard
  // exists, so the query is outside TriQ 1.0.
  EXPECT_EQ(query->Classify(), Language::kUnrestricted);
}

TEST(TriqQueryTest, LanguageNames) {
  EXPECT_EQ(LanguageName(Language::kTriqLite10), "TriQ-Lite 1.0");
  EXPECT_EQ(LanguageName(Language::kTriq10), "TriQ 1.0");
}

TEST(CloneInstanceTest, PreservesNullsAndFacts) {
  auto dict = Dict();
  chase::Instance db(dict);
  chase::Term z = db.AllocateNull(3);
  db.AddFact(dict->Intern("p"), {z, chase::Term::Constant(dict->Intern("a"))});
  chase::Instance copy = CloneInstance(db);
  EXPECT_EQ(copy.TotalFacts(), 1u);
  EXPECT_EQ(copy.null_count(), 1u);
  EXPECT_EQ(copy.NullDepth(z), 3u);
}

}  // namespace
}  // namespace triq::core

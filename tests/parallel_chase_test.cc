// The parallel sharded chase executor.
//
// The determinism contract (chase.h): for every num_threads, the chase
// produces a bit-identical instance — same tuples at the same tuple
// indexes, same null identities — and identical stats. These tests pin
// that down with storage-order fingerprints across an equivalence sweep
// (naive vs. seminaive vs. partitioned × threads ∈ {1, 2, 4, 8}), at
// the MatchBody level via the DriverPlan sharding contract, on the
// degenerate shard shapes (empty delta, single tuple, too small to
// shard), and for the work-stealing pool itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "common/thread_pool.h"
#include "core/workloads.h"
#include "datalog/parser.h"

namespace triq {
namespace {

using chase::ChaseOptions;
using chase::ChaseStats;
using chase::Instance;

/// Renders the instance in STORAGE order (predicate id, then tuple
/// index) — unlike Instance::ToString, which sorts and so would hide
/// tuple-order divergence between runs. Equal fingerprints mean the
/// runs committed identical facts in the identical order.
std::string StorageFingerprint(const Instance& instance) {
  std::set<datalog::PredicateId> predicates;
  for (const auto& [pred, rel] : instance.relations()) predicates.insert(pred);
  std::string out;
  for (datalog::PredicateId pred : predicates) {
    const chase::Relation* rel = instance.Find(pred);
    out += instance.dict().Text(pred) + ":";
    for (chase::TupleView tuple : rel->tuples()) {
      out += " (";
      for (chase::Term t : tuple) out += datalog::TermToString(t, instance.dict()) + ",";
      out += ")";
    }
    out += "\n";
  }
  return out;
}

struct RunOutcome {
  std::string fingerprint;
  ChaseStats stats;
};

RunOutcome RunWith(const datalog::Program& program, const Instance& db,
                   ChaseOptions options) {
  Instance work = db.CloneFacts();
  ChaseStats stats;
  Status status = RunChase(program, &work, options, &stats);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return {StorageFingerprint(work), stats};
}

/// Asserts the full sweep: for each evaluation mode, every thread count
/// yields the t=1 outcome bit-identically (fingerprint + every stat);
/// across modes, the sorted instance contents agree.
void CheckEquivalenceSweep(const datalog::Program& program,
                           const Instance& db) {
  struct Mode {
    const char* name;
    bool seminaive;
    bool partition;
  };
  const Mode kModes[] = {{"naive", false, false},
                         {"seminaive", true, false},
                         {"partitioned", true, true}};
  std::string content_across_modes;
  for (const Mode& mode : kModes) {
    ChaseOptions base;
    base.seminaive = mode.seminaive;
    base.partition_deltas = mode.partition;
    RunOutcome reference = RunWith(program, db, base);
    for (size_t threads : {2, 4, 8}) {
      ChaseOptions options = base;
      options.num_threads = threads;
      RunOutcome outcome = RunWith(program, db, options);
      EXPECT_EQ(outcome.fingerprint, reference.fingerprint)
          << mode.name << " with " << threads
          << " threads committed different facts or a different order";
      EXPECT_EQ(outcome.stats.rounds, reference.stats.rounds)
          << mode.name << "/" << threads;
      EXPECT_EQ(outcome.stats.rule_firings, reference.stats.rule_firings)
          << mode.name << "/" << threads;
      EXPECT_EQ(outcome.stats.facts_derived, reference.stats.facts_derived)
          << mode.name << "/" << threads;
      EXPECT_EQ(outcome.stats.nulls_created, reference.stats.nulls_created)
          << mode.name << "/" << threads;
    }
    // Across modes the derivation order differs legitimately; the
    // sorted content may not.
    Instance work = db.CloneFacts();
    EXPECT_TRUE(RunChase(program, &work, base).ok());
    if (content_across_modes.empty()) {
      content_across_modes = work.ToString();
    } else {
      EXPECT_EQ(work.ToString(), content_across_modes) << mode.name;
    }
  }
}

TEST(ParallelChaseTest, TransitiveClosureSweep) {
  auto dict = std::make_shared<Dictionary>();
  auto program = core::TransitiveClosureProgram(dict);
  Instance db = core::ChainDatabase(96, dict);
  CheckEquivalenceSweep(program, db);
}

TEST(ParallelChaseTest, RepeatedPredicatesAndNegationSweep) {
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  for (int i = 0; i < 200; ++i) {
    db.AddFact("e", {"n" + std::to_string(i), "n" + std::to_string(i + 1)});
    if (i % 3 == 0) db.AddFact("blocked", {"n" + std::to_string(i)});
  }
  auto program = datalog::ParseProgram(
      "e(?X, ?Y) -> tc(?X, ?Y) .\n"
      "tc(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .\n"
      "tc(?X, ?Y), not blocked(?X) -> open(?X, ?Y) .\n",
      dict);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  CheckEquivalenceSweep(*program, db);
}

TEST(ParallelChaseTest, ExistentialRulesKeepNullIdentity) {
  // Existential rules allocate labeled nulls during the commit replay;
  // bit-identical fingerprints prove null ids are assigned in the same
  // order for every thread count.
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  for (int i = 0; i < 300; ++i) {
    db.AddFact("person", {"p" + std::to_string(i)});
  }
  auto program = datalog::ParseProgram(
      "person(?X) -> exists ?Y parent(?X, ?Y), person(?Y) .\n", dict);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ChaseOptions base;
  base.max_null_depth = 3;
  RunOutcome reference = RunWith(*program, db, base);
  EXPECT_GT(reference.stats.nulls_created, 0u);
  for (size_t threads : {2, 4, 8}) {
    ChaseOptions options = base;
    options.num_threads = threads;
    RunOutcome outcome = RunWith(*program, db, options);
    EXPECT_EQ(outcome.fingerprint, reference.fingerprint) << threads;
    EXPECT_EQ(outcome.stats.nulls_created, reference.stats.nulls_created);
    EXPECT_EQ(outcome.stats.rule_firings, reference.stats.rule_firings);
  }
}

TEST(ParallelChaseTest, RandomGraphStrategyAndThreadSweep) {
  // Dense random digraph: most tc facts derive many times over (and
  // repeatedly within one pass), stressing the batch-commit's
  // staged-vs-staged dedup; sweep join strategies × thread counts.
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  uint64_t x = 99;
  for (int i = 0; i < 400; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    db.AddFact("e", {"n" + std::to_string(x % 60),
                     "n" + std::to_string((x >> 17) % 60)});
  }
  auto program = datalog::ParseProgram(
      "e(?X, ?Y) -> tc(?X, ?Y) .\n"
      "tc(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .\n",
      dict);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  for (auto strategy : {chase::JoinStrategy::kAuto, chase::JoinStrategy::kHash,
                        chase::JoinStrategy::kMerge}) {
    ChaseOptions base;
    base.join_strategy = strategy;
    RunOutcome reference = RunWith(*program, db, base);
    EXPECT_GT(reference.stats.rule_firings, reference.stats.facts_derived)
        << "workload must re-derive facts to stress the dedup";
    for (size_t threads : {2, 8}) {
      ChaseOptions options = base;
      options.num_threads = threads;
      RunOutcome outcome = RunWith(*program, db, options);
      EXPECT_EQ(outcome.fingerprint, reference.fingerprint)
          << "strategy " << static_cast<int>(strategy) << ", " << threads
          << " threads";
      EXPECT_EQ(outcome.stats.rule_firings, reference.stats.rule_firings);
      EXPECT_EQ(outcome.stats.facts_derived, reference.stats.facts_derived);
    }
  }
}

TEST(ParallelChaseTest, ParallelRehashMatchesSequentialInserts) {
  // Drives Relation's partition-parallel rehash directly: a relation
  // already holding 40k tuples (above the 32k parallel-rehash
  // threshold) takes a batch whose staged influx overloads the dedup
  // table, so BatchInserter::Prepare doubles it through the pool. The
  // committed relation must be indistinguishable from plain sequential
  // Insert()s of the same stream: same tuples at the same indexes, and
  // every tuple findable through the rebuilt table.
  using chase::Relation;
  auto term = [](uint32_t v) { return datalog::Term::Constant(v); };
  Relation rel(2), ref(2);
  for (uint32_t i = 0; i < 40000; ++i) {
    chase::Tuple t = {term(i % 9000), term(i)};
    rel.Insert(t);
    ref.Insert(t);
  }
  ASSERT_EQ(rel.size(), 40000u);

  // Staged stream: fresh tuples, repeats of stored tuples, in-stream
  // duplicates — row-major with precomputed Hash32, as the sharded
  // chase commit stages them.
  std::vector<chase::Term> flat;
  auto stage = [&](uint32_t a, uint32_t b) {
    flat.push_back(term(a));
    flat.push_back(term(b));
  };
  for (uint32_t i = 0; i < 20000; ++i) {
    stage(i % 9000, 40000 + i);                   // fresh
    if (i % 5 == 0) stage(i % 9000, i);           // already stored
    if (i % 7 == 0) stage(i % 9000, 40000 + i);   // in-stream duplicate
  }
  uint32_t n = static_cast<uint32_t>(flat.size() / 2);
  std::vector<uint32_t> hashes(n);
  for (uint32_t j = 0; j < n; ++j) {
    hashes[j] = Relation::Hash32(flat.data() + 2 * j, 2);
  }

  common::ThreadPool pool(3);
  chase::BatchInserter batch(&rel);
  batch.AddShard(flat.data(), hashes.data(), n);
  batch.Prepare(&pool);
  pool.ParallelFor(Relation::kDedupPartitions,
                   [&](size_t p) { batch.ScanPartition(p); });
  batch.CommitWinners();
  pool.ParallelFor(Relation::kDedupPartitions,
                   [&](size_t p) { batch.FinalizeSlots(p); });

  for (uint32_t j = 0; j < n; ++j) {
    ref.Insert(chase::Tuple{flat[2 * j], flat[2 * j + 1]});
  }
  ASSERT_EQ(rel.size(), ref.size());
  EXPECT_EQ(rel.size(), 60000u);
  for (uint32_t i = 0; i < rel.size(); i += 13) {
    EXPECT_EQ(rel.tuple(i)[0], ref.tuple(i)[0]) << i;
    EXPECT_EQ(rel.tuple(i)[1], ref.tuple(i)[1]) << i;
    EXPECT_EQ(rel.FindIndex(rel.tuple(i)), i) << i;
  }
}

TEST(ParallelChaseTest, LargeRunActuallyShards) {
  auto dict = std::make_shared<Dictionary>();
  auto program = core::TransitiveClosureProgram(dict);
  Instance db = core::ChainDatabase(256, dict);
  ChaseOptions options;
  options.num_threads = 4;
  Instance work = db.CloneFacts();
  ChaseStats stats;
  ASSERT_TRUE(RunChase(program, &work, options, &stats).ok());
  EXPECT_GT(stats.sharded_passes, 0u)
      << "a 256-node closure never cleared the sharding threshold";
}

// ---- degenerate shard shapes -----------------------------------------

TEST(ParallelChaseTest, EmptyDatabaseAndEmptyDeltas) {
  auto dict = std::make_shared<Dictionary>();
  auto program = core::TransitiveClosureProgram(dict);
  Instance db(dict);  // no edge facts at all
  ChaseOptions options;
  options.num_threads = 4;
  Instance work = db.CloneFacts();
  ChaseStats stats;
  ASSERT_TRUE(RunChase(program, &work, options, &stats).ok());
  EXPECT_EQ(stats.facts_derived, 0u);
  EXPECT_EQ(stats.sharded_passes, 0u);
}

TEST(ParallelChaseTest, SingleTupleWindowFallsBackToSequential) {
  auto dict = std::make_shared<Dictionary>();
  auto program = core::TransitiveClosureProgram(dict);
  Instance db = core::ChainDatabase(1, dict);
  ChaseOptions options;
  options.num_threads = 8;
  Instance work = db.CloneFacts();
  ChaseStats stats;
  ASSERT_TRUE(RunChase(program, &work, options, &stats).ok());
  EXPECT_EQ(stats.sharded_passes, 0u);  // one tuple: below the threshold
  Instance reference = db.CloneFacts();
  ASSERT_TRUE(RunChase(program, &reference, ChaseOptions{}).ok());
  EXPECT_EQ(StorageFingerprint(work), StorageFingerprint(reference));
}

TEST(ParallelChaseTest, WindowSmallerThanTwoShardsStaysSequential) {
  // 100 edges -> round-0 window of 100 tuples: one kMinDriverPerShard=64
  // shard only, so the scheduler must fall back (all-one-shard shape).
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  for (int i = 0; i < 100; ++i) {
    db.AddFact("color", {"c" + std::to_string(i % 7)});
  }
  auto program =
      datalog::ParseProgram("color(?X) -> seen(?X) .\n", dict);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ChaseOptions options;
  options.num_threads = 4;
  Instance work = db.CloneFacts();
  ChaseStats stats;
  ASSERT_TRUE(RunChase(*program, &work, options, &stats).ok());
  EXPECT_EQ(stats.sharded_passes, 0u);
  EXPECT_EQ(work.Find("seen")->size(), 7u);
}

// ---- the DriverPlan sharding contract at the MatchBody level ----------

/// Collects the match stream (order-sensitive!) of one MatchBody pass.
std::vector<std::string> MatchStream(const datalog::Rule& rule,
                                     const Instance& db,
                                     const chase::MatchOptions& options) {
  std::vector<std::string> out;
  Status status =
      MatchBody(rule, db, options, [&](const chase::Match& match) {
        std::string line;
        for (const auto& [var, val] : match.binding->entries()) {
          line += datalog::TermToString(var, db.dict()) + "=" +
                  datalog::TermToString(val, db.dict()) + " ";
        }
        out.push_back(line);
        return true;
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

TEST(DriverPlanTest, ConcatenatedShardsEqualUnshardedStream) {
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  for (int i = 0; i < 150; ++i) {
    db.AddFact("e", {"a" + std::to_string(i % 25), "b" + std::to_string(i)});
    db.AddFact("f", {"b" + std::to_string(i), "c" + std::to_string(i % 10)});
  }
  auto rule = datalog::ParseRule("e(?X, ?Y), f(?Y, ?Z) -> g(?X, ?Z)",
                                 dict.get());
  ASSERT_TRUE(rule.ok());
  for (auto strategy : {chase::JoinStrategy::kAuto, chase::JoinStrategy::kHash,
                        chase::JoinStrategy::kMerge}) {
    chase::MatchOptions options;
    options.join_strategy = strategy;
    std::vector<std::string> unsharded = MatchStream(*rule, db, options);
    ASSERT_FALSE(unsharded.empty());

    chase::DriverPlan plan = chase::PlanMatchDriver(*rule, db, options);
    ASSERT_GE(plan.body_index, 0);
    for (const auto& entry : db.relations()) entry.second.FreezeIndexes();
    for (size_t num_shards : {1, 2, 3, 7}) {
      std::vector<std::string> concatenated;
      for (size_t s = 0; s < num_shards; ++s) {
        size_t begin = plan.order.size() * s / num_shards;
        size_t end = plan.order.size() * (s + 1) / num_shards;
        chase::MatchOptions shard = options;
        shard.driver_order = plan.order.data() + begin;
        shard.driver_order_size = end - begin;
        shard.driver_sorted = plan.sorted;
        shard.driver_body_index = plan.body_index;
        std::vector<std::string> piece = MatchStream(*rule, db, shard);
        concatenated.insert(concatenated.end(), piece.begin(), piece.end());
      }
      EXPECT_EQ(concatenated, unsharded)
          << "strategy " << static_cast<int>(strategy) << ", " << num_shards
          << " shards";
    }
  }
}

TEST(DriverPlanTest, BoundPositionPlansAscendingSupersets) {
  // A constant in the depth-0 atom: the plan's order is the shortest
  // posting list (ascending); shards re-check by unification.
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  for (int i = 0; i < 80; ++i) {
    db.AddFact("t", {"s" + std::to_string(i), i % 2 == 0 ? "e" : "x",
                     "o" + std::to_string(i)});
  }
  auto rule = datalog::ParseRule("t(?X, e, ?Y) -> hop(?X, ?Y)", dict.get());
  ASSERT_TRUE(rule.ok());
  chase::MatchOptions options;
  chase::DriverPlan plan = chase::PlanMatchDriver(*rule, db, options);
  ASSERT_GE(plan.body_index, 0);
  EXPECT_FALSE(plan.sorted);
  EXPECT_EQ(plan.order.size(), 40u);  // the 'e' posting list, not all 80
  EXPECT_TRUE(std::is_sorted(plan.order.begin(), plan.order.end()));
  std::vector<std::string> unsharded = MatchStream(*rule, db, options);
  chase::MatchOptions shard = options;
  shard.driver_order = plan.order.data();
  shard.driver_order_size = plan.order.size();
  shard.driver_sorted = plan.sorted;
  shard.driver_body_index = plan.body_index;
  EXPECT_EQ(MatchStream(*rule, db, shard), unsharded);
}

TEST(DriverPlanTest, MismatchedBodyIndexFailsLoudly) {
  auto dict = std::make_shared<Dictionary>();
  Instance db(dict);
  db.AddFact("e", {"a", "b"});
  auto rule = datalog::ParseRule("e(?X, ?Y) -> r(?X, ?Y)", dict.get());
  ASSERT_TRUE(rule.ok());
  uint32_t order[] = {0};
  chase::MatchOptions options;
  options.driver_order = order;
  options.driver_order_size = 1;
  options.driver_body_index = 5;  // not the planned depth-0 atom
  Status status = MatchBody(*rule, db, options,
                            [](const chase::Match&) { return true; });
  EXPECT_FALSE(status.ok());
}

// ---- the work-stealing pool ------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  common::ThreadPool pool(3);
  for (size_t n : {0u, 1u, 2u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, StealsSkewedWork) {
  // All the real work lands in the first indices; stealing must spread
  // it without dropping or duplicating any index.
  common::ThreadPool pool(4);
  std::atomic<uint64_t> checksum{0};
  const size_t n = 257;
  pool.ParallelFor(n, [&](size_t i) {
    uint64_t burn = 1;
    size_t spins = i < 8 ? 20000 : 10;
    for (size_t k = 0; k < spins; ++k) burn = burn * 31 + k;
    checksum += i + (burn & 1 ? 0 : 0);
  });
  EXPECT_EQ(checksum.load(), static_cast<uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  common::ThreadPool pool(0);
  std::vector<int> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  common::ThreadPool pool(2);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(17, [&](size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

}  // namespace
}  // namespace triq

#include <gtest/gtest.h>

#include <memory>

#include "core/atm.h"
#include "core/workloads.h"
#include "datalog/classify.h"
#include "datalog/parser.h"
#include "translate/owl2ql_program.h"
#include "test_util.h"

namespace triq::datalog {
namespace {

using test::Dict;
using test::Parse;

TEST(ClassifyTest, Example41IsWeaklyFrontierGuardedNotWeaklyGuarded) {
  auto dict = Dict();
  Program program = Parse(R"(
    p(?X, ?Y), s(?Y, ?Z) -> exists ?W t(?Y, ?X, ?W) .
    t(?X, ?Y, ?Z) -> exists ?W p(?W, ?Z) .
    t(?X, ?Y, ?Z) -> s(?X, ?Y) .
  )",
                          dict);
  EXPECT_TRUE(IsWeaklyFrontierGuarded(program));
  // Rule 1 has harmful ?X (p[1]) and ?Z (s[2]) in different atoms.
  EXPECT_FALSE(IsWeaklyGuarded(program));
}

TEST(ClassifyTest, PlainDatalogIsEverything) {
  auto dict = Dict();
  Program program = Parse(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    edge(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .
  )",
                          dict);
  // affected(Π) = ∅, so all variables are harmless: trivially warded
  // (Section 6.3) and weakly-(frontier-)guarded.
  EXPECT_TRUE(IsWarded(program));
  EXPECT_TRUE(IsWeaklyGuarded(program));
  EXPECT_TRUE(IsWeaklyFrontierGuarded(program));
  EXPECT_TRUE(IsNearlyFrontierGuarded(program));
  EXPECT_TRUE(HasGroundedNegation(program));
  // But the TC rule has no atom containing all three variables:
  EXPECT_FALSE(IsGuarded(program));
}

TEST(ClassifyTest, GuardedProgram) {
  auto dict = Dict();
  Program program = Parse(R"(
    r(?X, ?Y, ?Z), p(?X) -> exists ?W r(?Y, ?Z, ?W) .
  )",
                          dict);
  EXPECT_TRUE(IsGuarded(program));
  EXPECT_TRUE(IsFrontierGuarded(program));
}

TEST(ClassifyTest, FrontierGuardedButNotGuarded) {
  auto dict = Dict();
  Program program = Parse(R"(
    p(?X, ?Y), q(?Z) -> exists ?W t(?X, ?Y, ?W) .
  )",
                          dict);
  // Frontier {?X, ?Y} is inside p, but no atom holds ?X ?Y ?Z together.
  EXPECT_TRUE(IsFrontierGuarded(program));
  EXPECT_FALSE(IsGuarded(program));
}

TEST(ClassifyTest, WardedRequiresHarmlessSharing) {
  auto dict = Dict();
  // The ward t(...) shares the harmful ?X with the second atom: weakly-
  // frontier-guarded but NOT warded (the Section 6.1 distinction).
  Program program = Parse(R"(
    start(?X) -> exists ?Y t(?X, ?Y) .
    t(?X, ?Y) -> t(?Y, ?X) .
    t(?X, ?Y), t(?Y, ?Z) -> out(?Y) .
  )",
                          dict);
  EXPECT_TRUE(IsWeaklyFrontierGuarded(program));
  EXPECT_FALSE(IsWarded(program));
}

TEST(ClassifyTest, WardedAcceptsHarmlessJoin) {
  auto dict = Dict();
  Program program = Parse(R"(
    person(?X) -> exists ?Y knows(?X, ?Y) .
    knows(?X, ?Y), person(?X) -> out(?Y) .
  )",
                          dict);
  // knows is the ward; it shares only the harmless ?X (person[1] is
  // non-affected) with the rest of the body.
  EXPECT_TRUE(IsWarded(program));
}

TEST(ClassifyTest, GroundedNegationDetectsHarmfulNegatedTerm) {
  auto dict = Dict();
  Program program = Parse(R"(
    p(?X) -> exists ?Y s(?X, ?Y) .
    s(?X, ?Y), not bad(?Y) -> out(?X) .
    s(?X, ?Y) -> bad(?Y) .
  )",
                          dict);
  EXPECT_FALSE(HasGroundedNegation(program));
}

TEST(ClassifyTest, GroundedNegationAcceptsHarmlessTerms) {
  auto dict = Dict();
  Program program = Parse(R"(
    p(?X) -> exists ?Y s(?X, ?Y) .
    s(?X, ?Y), p(?X), not bad(?X) -> out(?X) .
  )",
                          dict);
  EXPECT_TRUE(HasGroundedNegation(program));
}

TEST(ClassifyTest, NearlyFrontierGuardedAllowsHarmlessRecursion) {
  auto dict = Dict();
  Program program = Parse(R"(
    p0(?X) -> exists ?Y s(?X, ?Y) .
    p0(?X), p0(?Z) -> reach(?X, ?Z) .
    reach(?X, ?Z), p0(?W) -> reach(?X, ?W) .
  )",
                          dict);
  EXPECT_TRUE(IsNearlyFrontierGuarded(program));
}

TEST(ClassifyTest, NearlyFrontierGuardedRejectsHarmfulNonFrontierGuarded) {
  auto dict = Dict();
  Program program = Parse(R"(
    p(?X) -> exists ?Y s(?X, ?Y) .
    s(?X, ?Y), s(?Y, ?Z) -> t(?X, ?Z) .
  )",
                          dict);
  // Frontier {?X, ?Z} spans two atoms and ?Y, ?Z are harmful.
  EXPECT_FALSE(IsNearlyFrontierGuarded(program));
}

// --- The paper's named programs -----------------------------------------

TEST(ClassifyTest, Owl2QlCoreProgramIsTriqLite10) {
  auto dict = Dict();
  Program program = translate::BuildOwl2QlCoreProgram(dict);
  EXPECT_TRUE(IsWarded(program)) << IsWarded(program).reason;
  EXPECT_TRUE(HasGroundedNegation(program));
  EXPECT_TRUE(IsTriqLite10(program)) << IsTriqLite10(program).reason;
  // ...hence also TriQ 1.0 (warded ⊂ weakly-frontier-guarded).
  EXPECT_TRUE(IsTriq10(program));
}

TEST(ClassifyTest, CliqueProgramIsTriq10ButNotTriqLite10) {
  auto dict = Dict();
  Program program = core::CliqueProgram(dict);
  EXPECT_TRUE(IsTriq10(program)) << IsTriq10(program).reason;
  EXPECT_FALSE(IsWarded(program));
  // The negation on noclique(?X) ranges over nulls: not grounded.
  EXPECT_FALSE(HasGroundedNegation(program));
  EXPECT_FALSE(IsTriqLite10(program));
  // Example 4.3's program is within the mildest relaxation of Section
  // 6.4 — consistent with its ExpTime-hardness.
  EXPECT_TRUE(IsWardedWithMinimalInteraction(program))
      << IsWardedWithMinimalInteraction(program).reason;
}

TEST(ClassifyTest, AtmProgramIsMinimalInteractionNotWarded) {
  auto dict = Dict();
  Program program = core::AtmProgram(dict);
  EXPECT_TRUE(IsWardedWithMinimalInteraction(program))
      << IsWardedWithMinimalInteraction(program).reason;
  EXPECT_FALSE(IsWarded(program));
  EXPECT_TRUE(IsTriq10(program)) << IsTriq10(program).reason;
}

TEST(ClassifyTest, MinimalInteractionRejectsTwoSharedHarmfuls) {
  auto dict = Dict();
  Program program = Parse(R"(
    p(?X) -> exists ?Y ?Z t(?X, ?Y, ?Z) .
    t(?X, ?Y, ?Z), u(?Y, ?Z) -> t(?Z, ?Y, ?X) .
    t(?X, ?Y, ?Z) -> u(?Y, ?Z) .
  )",
                          dict);
  EXPECT_FALSE(IsWardedWithMinimalInteraction(program));
}

TEST(ClassifyTest, StratifiedCheckMirrorsStratify) {
  auto dict = Dict();
  Program bad = Parse(R"(
    n(?X), not q(?X) -> p(?X) .
    n(?X), not p(?X) -> q(?X) .
  )",
                      dict);
  EXPECT_FALSE(IsStratifiedCheck(bad));
  EXPECT_FALSE(IsTriq10(bad));
}

}  // namespace
}  // namespace triq::datalog

// The deterministic fault-injection registry: spec parsing, Nth-hit
// firing, fire-once semantics, evaluation counting, and env reload.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/failpoint.h"

namespace triq {
namespace {

// Every test leaves the registry disarmed so failpoints never leak into
// other tests in the binary.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { ASSERT_TRUE(FailpointsConfigure("")); }
};

TEST_F(FailpointTest, DisarmedByDefaultAndFree) {
  ASSERT_TRUE(FailpointsConfigure(""));
  EXPECT_FALSE(FailpointHit("some.site"));
  // Nothing armed: sites are not even counted (the fast path).
  EXPECT_EQ(FailpointEvaluations("some.site"), 0u);
}

TEST_F(FailpointTest, BareNameFiresOnFirstEvaluationOnlyOnce) {
  ASSERT_TRUE(FailpointsConfigure("a.site"));
  EXPECT_TRUE(FailpointHit("a.site"));
  EXPECT_FALSE(FailpointHit("a.site"));  // fires exactly once
  EXPECT_FALSE(FailpointHit("a.site"));
  EXPECT_EQ(FailpointEvaluations("a.site"), 3u);
}

TEST_F(FailpointTest, FiresOnNthEvaluation) {
  ASSERT_TRUE(FailpointsConfigure("a.site:3"));
  EXPECT_FALSE(FailpointHit("a.site"));
  EXPECT_FALSE(FailpointHit("a.site"));
  EXPECT_TRUE(FailpointHit("a.site"));
  EXPECT_FALSE(FailpointHit("a.site"));
}

TEST_F(FailpointTest, MultipleSitesIndependent) {
  ASSERT_TRUE(FailpointsConfigure("first:1;second:2"));
  EXPECT_TRUE(FailpointHit("first"));
  EXPECT_FALSE(FailpointHit("second"));
  EXPECT_TRUE(FailpointHit("second"));
}

TEST_F(FailpointTest, UnarmedSitesStillCountedWhenAnythingActive) {
  ASSERT_TRUE(FailpointsConfigure("armed:1"));
  EXPECT_FALSE(FailpointHit("other.site"));
  EXPECT_FALSE(FailpointHit("other.site"));
  // The sweep driver relies on this: it discovers how many injection
  // points a workload passes through by arming anything and counting.
  EXPECT_EQ(FailpointEvaluations("other.site"), 2u);
}

TEST_F(FailpointTest, ReconfigureResetsCounters) {
  ASSERT_TRUE(FailpointsConfigure("a.site:2"));
  EXPECT_FALSE(FailpointHit("a.site"));
  ASSERT_TRUE(FailpointsConfigure("a.site:2"));
  EXPECT_EQ(FailpointEvaluations("a.site"), 0u);
  EXPECT_FALSE(FailpointHit("a.site"));
  EXPECT_TRUE(FailpointHit("a.site"));
}

TEST_F(FailpointTest, MalformedSpecRejectedAndPreviousKept) {
  ASSERT_TRUE(FailpointsConfigure("keep.me:1"));
  EXPECT_FALSE(FailpointsConfigure("bad:0"));       // trigger must be >= 1
  EXPECT_FALSE(FailpointsConfigure("bad:zebra"));   // not a number
  EXPECT_FALSE(FailpointsConfigure(":3"));          // empty name
  EXPECT_TRUE(FailpointHit("keep.me"));  // previous config survived intact
}

TEST_F(FailpointTest, ResetReadsEnvironment) {
  ::setenv("TRIQ_FAILPOINTS", "env.site:2", 1);
  FailpointsReset();
  EXPECT_FALSE(FailpointHit("env.site"));
  EXPECT_TRUE(FailpointHit("env.site"));
  ::unsetenv("TRIQ_FAILPOINTS");
  FailpointsReset();
  EXPECT_FALSE(FailpointHit("env.site"));
  EXPECT_EQ(FailpointEvaluations("env.site"), 0u);
}

}  // namespace
}  // namespace triq

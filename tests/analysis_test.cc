// The static analyzer: the termination-verdict lattice (datalog ⊂
// weakly acyclic ⊂ jointly acyclic, kUnknown above), witness cycles,
// the rule reliance graph, the lint pass, and the end-to-end wiring —
// EngineOptions::require_termination_guarantee blocking a divergent
// program before any chase round, and the SCC-ordered chase schedule
// being counter-equivalent to the joint schedule.
#include "analysis/analyze.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/reliance.h"
#include "analysis/termination.h"
#include "chase/chase.h"
#include "chase/instance.h"
#include "core/workloads.h"
#include "engine/engine.h"
#include "test_util.h"
#include "translate/owl2ql_program.h"
#include "translate/owl2rl_program.h"
#include "translate/vocab_rules.h"

namespace {

using triq::Dictionary;
using triq::analysis::Analyze;
using triq::analysis::AnalyzeTermination;
using triq::analysis::ExistentialGraph;
using triq::analysis::Lint;
using triq::analysis::LintCheck;
using triq::analysis::LintOptions;
using triq::analysis::LintProgram;
using triq::analysis::LintRules;
using triq::analysis::LintSeverity;
using triq::analysis::PositionGraph;
using triq::analysis::ProgramAnalysis;
using triq::analysis::RelianceGraph;
using triq::analysis::Termination;
using triq::analysis::TerminationVerdict;
using triq::test::Dict;
using triq::test::Parse;

bool HasLint(const std::vector<Lint>& lints, LintCheck check, int rule) {
  return std::any_of(lints.begin(), lints.end(), [&](const Lint& l) {
    return l.check == check && l.rule == rule;
  });
}

// ---- Termination lattice ----------------------------------------------

TEST(TerminationTest, DatalogProgramTerminates) {
  auto dict = Dict();
  auto program = Parse(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    tc(?X, ?Y), edge(?Y, ?Z) -> tc(?X, ?Z) .
  )",
                       dict);
  TerminationVerdict verdict = AnalyzeTermination(program);
  EXPECT_EQ(verdict.termination, Termination::kGuaranteedTerminating);
  EXPECT_EQ(verdict.method, "datalog");
  EXPECT_TRUE(verdict.witness.empty());
}

TEST(TerminationTest, WeaklyAcyclicExistentialTerminates) {
  auto dict = Dict();
  // The invented witness flows only into `work`/`author`, never back
  // into a position that can trigger invention: weakly acyclic.
  auto program = Parse(R"(
    person(?X) -> exists ?W wrote(?X, ?W) .
    wrote(?X, ?W) -> work(?W) .
    wrote(?X, ?W) -> author(?X) .
  )",
                       dict);
  PositionGraph positions(program);
  EXPECT_TRUE(positions.IsWeaklyAcyclic());
  EXPECT_GT(positions.num_ordinary_edges(), 0u);
  EXPECT_GT(positions.num_special_edges(), 0u);
  TerminationVerdict verdict = AnalyzeTermination(program);
  EXPECT_EQ(verdict.termination, Termination::kGuaranteedTerminating);
  EXPECT_EQ(verdict.method, "weak-acyclicity");
}

TEST(TerminationTest, JointAcyclicityRefinesWeakAcyclicity) {
  auto dict = Dict();
  // Krötzsch & Rudolph's separating example: the position graph has the
  // special-edge cycle a[0] => r[1] -> a[0], but ?Y's movement set never
  // reaches a position that feeds ?Y's own rule (b is EDB-only), so the
  // existential dependency graph is acyclic.
  auto program = Parse(R"(
    a(?X) -> exists ?Y r(?X, ?Y) .
    r(?X, ?Y), b(?Y) -> a(?Y) .
  )",
                       dict);
  PositionGraph positions(program);
  EXPECT_FALSE(positions.IsWeaklyAcyclic());
  ExistentialGraph existentials(program);
  EXPECT_TRUE(existentials.IsJointlyAcyclic());
  EXPECT_EQ(existentials.num_existentials(), 1u);
  TerminationVerdict verdict = AnalyzeTermination(program);
  EXPECT_EQ(verdict.termination, Termination::kGuaranteedTerminating);
  EXPECT_EQ(verdict.method, "joint-acyclicity");
}

TEST(TerminationTest, DivergentProgramIsUnknownWithWitness) {
  auto dict = Dict();
  // The classic non-terminating single rule: every null at r[1] forces
  // a fresh null at r[1] — a special self-loop in the position graph.
  auto program = Parse("r(?X, ?Y) -> exists ?Z r(?Y, ?Z) .", dict);
  TerminationVerdict verdict = AnalyzeTermination(program);
  EXPECT_EQ(verdict.termination, Termination::kUnknown);
  EXPECT_TRUE(verdict.method.empty());
  EXPECT_NE(verdict.witness.find("r[1]"), std::string::npos)
      << verdict.witness;
  EXPECT_NE(verdict.witness.find("rule 0"), std::string::npos)
      << verdict.witness;
}

TEST(TerminationTest, VocabularyLibrariesTerminate) {
  // The Section 2 rule libraries and the whole OWL 2 RL program are
  // existential-free, so the cheapest criterion already certifies them.
  auto dict = Dict();
  EXPECT_EQ(AnalyzeTermination(triq::translate::SameAsRules(dict)).method,
            "datalog");
  EXPECT_EQ(AnalyzeTermination(triq::translate::RdfsRules(dict)).method,
            "datalog");
  EXPECT_EQ(
      AnalyzeTermination(triq::translate::BuildOwl2RlProgram(dict)).method,
      "datalog");
}

TEST(TerminationTest, RestrictedChaseOnlyProgramsAreHonestlyUnknown) {
  // τ_owl2ql_core and the owl:Restriction library invent nulls into the
  // same `triple` positions they read — position analysis (which cannot
  // see the restricted chase's satisfaction check) finds special cycles
  // and must answer kUnknown, not a false guarantee. These programs DO
  // terminate under the engine's restricted chase; the verdict is sound
  // (never wrong), just incomplete.
  auto dict = Dict();
  TerminationVerdict core =
      AnalyzeTermination(triq::translate::BuildOwl2QlCoreProgram(dict));
  EXPECT_EQ(core.termination, Termination::kUnknown);
  EXPECT_FALSE(core.witness.empty());
  TerminationVerdict restriction =
      AnalyzeTermination(triq::translate::OnPropertyRules(dict));
  EXPECT_EQ(restriction.termination, Termination::kUnknown);
}

// ---- Reliance graph ---------------------------------------------------

TEST(RelianceGraphTest, EdgesAndCondensationOrder) {
  auto dict = Dict();
  auto program = Parse(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    tc(?X, ?Y), edge(?Y, ?Z) -> tc(?X, ?Z) .
    tc(?X, ?Y) -> reach(?X) .
  )",
                       dict);
  RelianceGraph reliance(program);
  ASSERT_EQ(reliance.num_rules(), 3u);
  // Rule 0 derives tc, read positively by rules 1 and 2.
  EXPECT_EQ(reliance.PositiveReliers(0), (std::vector<uint32_t>{1, 2}));
  // Rule 1 is recursive (relies on itself) and feeds rule 2.
  EXPECT_EQ(reliance.PositiveReliers(1), (std::vector<uint32_t>{1, 2}));
  // Nothing reads `reach`.
  EXPECT_TRUE(reliance.PositiveReliers(2).empty());
  EXPECT_TRUE(reliance.NegativeReliers(0).empty());
  // Three singleton groups in topological (producer-first) order.
  EXPECT_EQ(reliance.num_groups(), 3u);
  EXPECT_LT(reliance.GroupOf(0), reliance.GroupOf(2));
  EXPECT_LT(reliance.GroupOf(1), reliance.GroupOf(2));
  auto runs = reliance.OrderRules({0, 1, 2});
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs.back(), std::vector<size_t>{2});
}

TEST(RelianceGraphTest, MutualRecursionLandsInOneGroup) {
  auto dict = Dict();
  auto program = Parse(R"(
    base(?X, ?Y) -> p(?X, ?Y) .
    p(?X, ?Y) -> q(?Y, ?X) .
    q(?X, ?Y) -> p(?X, ?Y) .
  )",
                       dict);
  RelianceGraph reliance(program);
  EXPECT_EQ(reliance.GroupOf(1), reliance.GroupOf(2));
  EXPECT_LT(reliance.GroupOf(0), reliance.GroupOf(1));
  auto runs = reliance.OrderRules({0, 1, 2});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], std::vector<size_t>{0});
  EXPECT_EQ(runs[1], (std::vector<size_t>{1, 2}));
}

TEST(RelianceGraphTest, NegativeRelianceIsTrackedSeparately) {
  auto dict = Dict();
  auto program = Parse(R"(
    src(?X) -> reached(?X) .
    node(?X), not reached(?X) -> isolated(?X) .
  )",
                       dict);
  RelianceGraph reliance(program);
  EXPECT_EQ(reliance.NegativeReliers(0), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(reliance.PositiveReliers(0).empty());
}

// ---- Lint pass --------------------------------------------------------

TEST(LintTest, CleanProgramHasNoFindings) {
  auto dict = Dict();
  auto program = Parse(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    tc(?X, ?Y), edge(?Y, ?Z) -> tc(?X, ?Z) .
  )",
                       dict);
  LintOptions options;
  options.output_predicates.insert(dict->Intern("tc"));
  EXPECT_TRUE(LintProgram(program, options).empty());
}

TEST(LintTest, UnsafeNegationIsAnError) {
  // Program::AddRule would reject this rule, which is exactly why
  // LintRules works on raw vectors: the linter must be able to explain
  // rules the loader refuses.
  auto dict = Dict();
  triq::datalog::Rule rule;
  auto var = [&](const char* name) {
    return triq::datalog::Term::Variable(dict->Intern(name));
  };
  rule.body.push_back({dict->Intern("p"), {var("?X")}, false});
  rule.body.push_back({dict->Intern("q"), {var("?Y")}, true});
  rule.head.push_back({dict->Intern("s"), {var("?X")}, false});
  std::vector<Lint> lints = LintRules({rule}, *dict);
  ASSERT_TRUE(HasLint(lints, LintCheck::kUnsafeNegation, 0));
  EXPECT_EQ(lints[0].severity, LintSeverity::kError);
  EXPECT_NE(lints[0].message.find("?Y"), std::string::npos);
}

TEST(LintTest, ArityMismatchIsAnError) {
  auto dict = Dict();
  auto program = Parse(R"(
    p(?X, ?Y) -> q(?X) .
    p(?X) -> r(?X) .
  )",
                       dict);
  LintOptions options;
  options.output_predicates.insert(dict->Intern("q"));
  options.output_predicates.insert(dict->Intern("r"));
  std::vector<Lint> lints = LintProgram(program, options);
  ASSERT_TRUE(HasLint(lints, LintCheck::kArityMismatch, 1));
  EXPECT_NE(lints[0].message.find("'p'"), std::string::npos);
}

TEST(LintTest, ImplicitExistentialIsAWarningDeclaredIsNot) {
  auto dict = Dict();
  auto program = Parse(R"(
    person(?X) -> wrote(?X, ?W) .
    person(?X) -> exists ?V owns(?X, ?V) .
    wrote(?X, ?W), owns(?X, ?V) -> ok(?X) .
  )",
                       dict);
  LintOptions options;
  options.output_predicates.insert(dict->Intern("ok"));
  std::vector<Lint> lints = LintProgram(program, options);
  EXPECT_TRUE(HasLint(lints, LintCheck::kImplicitExistential, 0));
  EXPECT_FALSE(HasLint(lints, LintCheck::kImplicitExistential, 1));
}

TEST(LintTest, UnusedAndUnderivablePredicates) {
  auto dict = Dict();
  auto program = Parse(R"(
    ghost(?X) -> derived(?X) .
    input(?X) -> answer(?X) .
  )",
                       dict);
  LintOptions options;
  options.output_predicates.insert(dict->Intern("answer"));
  options.edb_known = true;
  options.edb_predicates.insert(dict->Intern("input"));
  std::vector<Lint> lints = LintProgram(program, options);
  // `derived` is written but never read; `ghost` is read but neither
  // derived nor in the database. `answer` (output) and `input` (EDB)
  // are exempt.
  EXPECT_TRUE(HasLint(lints, LintCheck::kUnusedPredicate, 0));
  EXPECT_TRUE(HasLint(lints, LintCheck::kUnderivablePredicate, 0));
  EXPECT_EQ(lints.size(), 2u);
}

TEST(LintTest, ShadowedRuleDetectedAcrossDictionaries) {
  // The shadow program lives in its own dictionary: detection must work
  // on structure (canonical variable renaming), not symbol ids.
  auto shadow_dict = Dict();
  auto shadow = Parse(
      "triple(?A, subClassOf, ?B), triple(?X, type, ?A)"
      " -> triple(?X, type, ?B) .",
      shadow_dict);
  auto dict = Dict();
  auto program = Parse(R"(
    triple(?C, subClassOf, ?D), triple(?I, type, ?C)
      -> triple(?I, type, ?D) .
    triple(?X, knows, ?Y) -> triple(?Y, knows, ?X) .
  )",
                       dict);
  LintOptions options;
  options.shadow_program = &shadow;
  std::vector<Lint> lints = LintProgram(program, options);
  EXPECT_TRUE(HasLint(lints, LintCheck::kShadowedRule, 0));
  EXPECT_FALSE(HasLint(lints, LintCheck::kShadowedRule, 1));
}

TEST(LintTest, DuplicateRuleUpToRenamingIsAWarning) {
  auto dict = Dict();
  auto program = Parse(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    tc(?X, ?Y), edge(?Y, ?Z) -> tc(?X, ?Z) .
    edge(?A, ?B) -> tc(?A, ?B) .
  )",
                       dict);
  LintOptions options;
  options.output_predicates.insert(dict->Intern("tc"));
  std::vector<Lint> lints = LintProgram(program, options);
  ASSERT_TRUE(HasLint(lints, LintCheck::kDuplicateRule, 2));
  EXPECT_FALSE(HasLint(lints, LintCheck::kDuplicateRule, 0));
  EXPECT_FALSE(HasLint(lints, LintCheck::kDuplicateRule, 1));
  EXPECT_EQ(lints[0].severity, LintSeverity::kWarning);
  // The finding names the first occurrence it duplicates.
  EXPECT_NE(lints[0].message.find("rule 0"), std::string::npos);
}

TEST(LintTest, StructurallyDistinctRulesAreNotDuplicates) {
  // Swapping the variable roles is a different rule even though a
  // set-of-atoms comparison would conflate them: identity is canonical
  // first-occurrence renaming, exactly like shadow detection.
  auto dict = Dict();
  auto program = Parse(R"(
    edge(?X, ?Y) -> reach(?X, ?Y) .
    edge(?Y, ?X) -> reach(?X, ?Y) .
  )",
                       dict);
  LintOptions options;
  options.output_predicates.insert(dict->Intern("reach"));
  std::vector<Lint> lints = LintProgram(program, options);
  EXPECT_FALSE(HasLint(lints, LintCheck::kDuplicateRule, 1));
}

TEST(LintTest, DuplicateDetectionSkipsTheExemptPrefix) {
  auto dict = Dict();
  auto program = Parse(R"(
    edge(?X, ?Y) -> reach(?X, ?Y) .
    edge(?A, ?B) -> reach(?A, ?B) .
  )",
                       dict);
  LintOptions options;
  options.exempt_prefix = 1;  // rule 0 is engine-attached
  options.output_predicates.insert(dict->Intern("reach"));
  std::vector<Lint> lints = LintProgram(program, options);
  // Rule 1 is the FIRST non-exempt occurrence, not a duplicate; overlap
  // with the core is the shadow check's job, not this one's.
  EXPECT_FALSE(HasLint(lints, LintCheck::kDuplicateRule, 1));
}

TEST(LintTest, RecursionThroughNegationIsAProgramError) {
  auto dict = Dict();
  auto program = Parse(R"(
    node(?X), not q(?X) -> p(?X) .
    node(?X), not p(?X) -> q(?X) .
  )",
                       dict);
  LintOptions options;
  options.output_predicates.insert(dict->Intern("p"));
  options.output_predicates.insert(dict->Intern("q"));
  std::vector<Lint> lints = LintProgram(program, options);
  ASSERT_TRUE(HasLint(lints, LintCheck::kNotStratified, -1));
  EXPECT_EQ(lints[0].severity, LintSeverity::kError);
  EXPECT_NE(lints[0].message.find("rule"), std::string::npos);
}

TEST(LintTest, ExemptPrefixSuppressesPerRuleFindingsButKeepsUsage) {
  auto dict = Dict();
  auto program = Parse(R"(
    person(?X) -> wrote(?X, ?W) .
    wrote(?X, ?W) -> author(?X) .
  )",
                       dict);
  LintOptions options;
  options.exempt_prefix = 1;  // rule 0 is "engine-attached"
  options.output_predicates.insert(dict->Intern("author"));
  std::vector<Lint> lints = LintProgram(program, options);
  // Rule 0's implicit existential is exempt, and `wrote` counts as
  // derived for rule 1 even though its deriving rule is exempt.
  EXPECT_TRUE(lints.empty()) << triq::analysis::LintToString(lints[0]);
}

// ---- Analyze + Report -------------------------------------------------

TEST(AnalyzeTest, ReportCarriesVerdictShapeAndFindings) {
  auto dict = Dict();
  auto program = Parse(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    tc(?X, ?Y), edge(?Y, ?Z) -> tc(?X, ?Z) .
    tc(?X, ?Y) -> top(?X) .
  )",
                       dict);
  ProgramAnalysis analysis = Analyze(program);
  EXPECT_EQ(analysis.verdict.termination,
            Termination::kGuaranteedTerminating);
  EXPECT_EQ(analysis.num_rules, 3u);
  EXPECT_TRUE(analysis.stratified);
  EXPECT_EQ(analysis.num_strata, 1u);
  EXPECT_EQ(analysis.num_rule_groups, 3u);
  EXPECT_FALSE(analysis.HasErrors());
  EXPECT_EQ(analysis.CountSeverity(LintSeverity::kWarning), 1u);
  std::string report = analysis.Report();
  EXPECT_NE(report.find("guaranteed-terminating (datalog)"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("unused-predicate"), std::string::npos) << report;
}

// ---- Engine wiring ----------------------------------------------------

TEST(EngineAnalysisTest, TerminationGuaranteeBlocksBeforeAnyChaseRound) {
  triq::Engine engine(
      triq::EngineOptions().SetRequireTerminationGuarantee(true));
  ASSERT_TRUE(engine.AddTriple("a", "r", "b").ok());
  ASSERT_TRUE(
      engine.AttachRules("triple(?X, r, ?Y) -> exists ?Z triple(?Y, r, ?Z) .")
          .ok());
  auto stats = engine.Materialize();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), triq::StatusCode::kInvalidArgument);
  EXPECT_NE(stats.status().message().find("triple[2]"), std::string::npos)
      << stats.status().ToString();
  // Rejected statically: no chase ran, nothing was published.
  EXPECT_EQ(engine.materializations(), 0u);
  EXPECT_FALSE(engine.IsMaterialized());
}

TEST(EngineAnalysisTest, TerminationGuaranteeAdmitsProvablePrograms) {
  triq::Engine engine(
      triq::EngineOptions().SetRequireTerminationGuarantee(true));
  ASSERT_TRUE(engine.AddTriple("a", "e", "b").ok());
  ASSERT_TRUE(engine.AddTriple("b", "e", "c").ok());
  ASSERT_TRUE(engine.AttachRules(R"(
    triple(?X, e, ?Y) -> tc(?X, ?Y) .
    tc(?X, ?Y), triple(?Y, e, ?Z) -> tc(?X, ?Z) .
  )")
                  .ok());
  auto stats = engine.Materialize();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->termination, Termination::kGuaranteedTerminating);
  EXPECT_EQ(stats->strata, 1u);
  EXPECT_GE(stats->rule_groups, 1u);
  auto answers = engine.Answers("tc");
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 3u);
}

TEST(EngineAnalysisTest, AnalyzeProgramUsesSessionEdbAndOutputs) {
  triq::Engine engine;
  ASSERT_TRUE(engine.AddTriple("a", "e", "b").ok());
  ASSERT_TRUE(engine.AttachRules(R"(
    triple(?X, e, ?Y) -> tc(?X, ?Y) .
    missing(?X) -> tc(?X, ?X) .
  )")
                  .ok());
  ProgramAnalysis analysis = engine.AnalyzeProgram({"tc"});
  EXPECT_EQ(analysis.verdict.termination,
            Termination::kGuaranteedTerminating);
  EXPECT_FALSE(analysis.HasErrors());
  // `triple` is in the loaded base (EDB), `tc` is declared an output:
  // the only finding is the underivable `missing`.
  ASSERT_EQ(analysis.lints.size(), 1u);
  EXPECT_EQ(analysis.lints[0].check, LintCheck::kUnderivablePredicate);
  // AnalyzeProgram never materializes.
  EXPECT_EQ(engine.materializations(), 0u);
}

TEST(EngineAnalysisTest, CoreRulesAreExemptUnderReasoningRegimes) {
  triq::Engine engine(
      triq::EngineOptions().SetRegime(triq::EntailmentRegime::kActiveDomain));
  ProgramAnalysis analysis = engine.AnalyzeProgram();
  // The attached τ_owl2ql_core alone: every rule is exempt, so the only
  // admissible findings are program-level ones (there are none — the
  // core is stratified).
  EXPECT_FALSE(analysis.HasErrors());
  EXPECT_TRUE(analysis.lints.empty());
  // A user rule duplicating a core rule (sc-transitivity, renamed
  // variables) is flagged as shadowed.
  ASSERT_TRUE(
      engine.AttachRules("sc(?A, ?B), sc(?B, ?C) -> sc(?A, ?C) .").ok());
  ProgramAnalysis with_user = engine.AnalyzeProgram();
  EXPECT_TRUE(HasLint(with_user.lints, LintCheck::kShadowedRule,
                      static_cast<int>(with_user.num_rules) - 1));
}

// ---- SCC-ordered chase equivalence ------------------------------------

/// Order-independent image of an instance: per predicate (sorted by
/// name), the sorted list of tuples as raw term vectors. Two chases
/// that derive the same fact set compare equal regardless of storage
/// order.
std::map<std::string, std::vector<std::vector<uint32_t>>> FactImage(
    const triq::chase::Instance& instance) {
  std::map<std::string, std::vector<std::vector<uint32_t>>> image;
  for (const auto& [pred, rel] : instance.relations()) {
    auto& tuples = image[instance.dict().Text(pred)];
    for (size_t i = 0; i < rel.size(); ++i) {
      auto view = rel.tuple(i);
      std::vector<uint32_t> raw;
      for (uint32_t j = 0; j < rel.arity(); ++j) {
        raw.push_back(view[j].raw());
      }
      tuples.push_back(std::move(raw));
    }
    std::sort(tuples.begin(), tuples.end());
  }
  return image;
}

struct ChaseOutcome {
  std::map<std::string, std::vector<std::vector<uint32_t>>> image;
  size_t rule_firings;
  size_t facts_derived;
  uint32_t null_count;
  size_t rule_groups;
};

ChaseOutcome RunOnce(const triq::datalog::Program& program,
                     const triq::chase::Instance& database, bool scc_order,
                     size_t threads) {
  triq::chase::Instance instance = database.CloneFacts();
  triq::chase::ChaseOptions options;
  options.scc_rule_order = scc_order;
  options.num_threads = threads;
  triq::chase::ChaseStats stats;
  triq::Status status =
      triq::chase::RunChase(program, &instance, options, &stats);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return {FactImage(instance), stats.rule_firings, stats.facts_derived,
          instance.null_count(), stats.rule_groups};
}

void ExpectScheduleEquivalent(const triq::datalog::Program& program,
                              const triq::chase::Instance& database) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ChaseOutcome joint = RunOnce(program, database, false, threads);
    ChaseOutcome ordered = RunOnce(program, database, true, threads);
    EXPECT_EQ(joint.image, ordered.image);
    EXPECT_EQ(joint.rule_firings, ordered.rule_firings);
    EXPECT_EQ(joint.facts_derived, ordered.facts_derived);
    EXPECT_EQ(joint.null_count, ordered.null_count);
    // The ordered schedule really did split the work (unless the
    // program is a single group, where both schedules coincide).
    EXPECT_GE(ordered.rule_groups, joint.rule_groups);
  }
}

TEST(SccOrderTest, TransitiveClosureChain) {
  auto dict = Dict();
  auto program = triq::core::TransitiveClosureProgram(dict);
  auto database = triq::core::ChainDatabase(24, dict);
  ExpectScheduleEquivalent(program, database);
}

TEST(SccOrderTest, LayeredDerivationPipeline) {
  auto dict = Dict();
  // Four dependent layers plus a recursive middle: the condensation has
  // several groups, so the ordered schedule differs materially from the
  // joint sweep.
  auto program = Parse(R"(
    edge(?X, ?Y) -> hop(?X, ?Y) .
    hop(?X, ?Y) -> path(?X, ?Y) .
    path(?X, ?Y), hop(?Y, ?Z) -> path(?X, ?Z) .
    path(?X, ?Y) -> connected(?X) .
    connected(?X) -> audited(?X) .
  )",
                       dict);
  auto database = triq::core::ChainDatabase(16, dict);
  ExpectScheduleEquivalent(program, database);
}

TEST(SccOrderTest, StratifiedNegationProgram) {
  auto dict = Dict();
  auto program = Parse(R"(
    src(?X, ?Y) -> reached(?Y) .
    reached(?X), src(?X, ?Y) -> reached(?Y) .
    node(?X, ?X), not reached(?X) -> isolated(?X) .
  )",
                       dict);
  triq::chase::Instance database(dict);
  for (int i = 0; i + 1 < 8; ++i) {
    std::string a = "n" + std::to_string(i);
    std::string b = "n" + std::to_string(i + 1);
    ASSERT_TRUE(database.AddFact("src", {a, b}));
  }
  ASSERT_TRUE(database.AddFact("node", {"n0", "n0"}));
  ASSERT_TRUE(database.AddFact("node", {"solo", "solo"}));
  ExpectScheduleEquivalent(program, database);
}

TEST(SccOrderTest, CliqueWorkload) {
  auto dict = Dict();
  auto program = triq::core::CliqueProgram(dict);
  auto database = triq::core::CliqueDatabase(
      5, triq::core::CompleteGraphEdges(5), 3, dict);
  ExpectScheduleEquivalent(program, database);
}

TEST(SccOrderTest, ExistentialStrataFallBackToJointSchedule) {
  auto dict = Dict();
  // One stratum containing an existential rule: the gate must leave the
  // schedule untouched, so the two runs are bit-identical — storage
  // order and null identities included.
  auto program = Parse(R"(
    person(?X) -> exists ?W wrote(?X, ?W) .
    wrote(?X, ?W), person(?X) -> covered(?X) .
  )",
                       dict);
  triq::chase::Instance database(dict);
  ASSERT_TRUE(database.AddFact("person", {"alice"}));
  ASSERT_TRUE(database.AddFact("person", {"bob"}));
  triq::chase::Instance joint = database.CloneFacts();
  triq::chase::Instance ordered = database.CloneFacts();
  triq::chase::ChaseOptions options;
  ASSERT_TRUE(triq::chase::RunChase(program, &joint, options).ok());
  options.scc_rule_order = true;
  triq::chase::ChaseStats stats;
  ASSERT_TRUE(
      triq::chase::RunChase(program, &ordered, options, &stats).ok());
  EXPECT_EQ(joint.ToString(), ordered.ToString());
  EXPECT_EQ(stats.rule_groups, stats.strata);
}

TEST(SccOrderTest, EngineOptionThreadsThroughToAnswers) {
  auto run = [](bool ordered) {
    triq::Engine engine(triq::EngineOptions().SetSccRuleOrder(ordered));
    EXPECT_TRUE(engine
                    .AttachRules(R"(
      triple(?X, e, ?Y) -> hop(?X, ?Y) .
      hop(?X, ?Y) -> tc(?X, ?Y) .
      tc(?X, ?Y), hop(?Y, ?Z) -> tc(?X, ?Z) .
    )")
                    .ok());
    for (int i = 0; i + 1 < 6; ++i) {
      EXPECT_TRUE(engine
                      .AddTriple("v" + std::to_string(i), "e",
                                 "v" + std::to_string(i + 1))
                      .ok());
    }
    auto answers = engine.Answers("tc");
    EXPECT_TRUE(answers.ok());
    std::vector<std::vector<uint32_t>> rows;
    for (const auto& tuple : *answers) {
      std::vector<uint32_t> row;
      for (auto t : tuple) row.push_back(t.raw());
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace

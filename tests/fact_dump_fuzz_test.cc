// Deterministic corruption fuzzing for the binary fact-dump reader
// (satellite of the durability work): 50 truncations and 50 bit flips
// of a real dump must every one be REJECTED with a clean error — no
// crash, no hang, no silently mis-loaded instance. Run under
// ASan/UBSan in CI, this is the harness that proves LoadFacts cannot be
// walked out of bounds by hostile bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>

#include "chase/chase.h"
#include "chase/fact_dump.h"
#include "datalog/parser.h"

namespace triq {
namespace {

/// A dump with some meat on it: several relations, mixed arities,
/// literals, and chase-produced labeled nulls (the null table is its
/// own section in the format, so it must be fuzzed too).
std::string BuildDump() {
  auto dict = std::make_shared<Dictionary>();
  chase::Instance db(dict);
  for (int i = 0; i < 20; ++i) {
    db.AddFact("edge", {"n" + std::to_string(i), "n" + std::to_string(i + 1)});
    db.AddFact("label", {"n" + std::to_string(i), "\"node " +
                         std::to_string(i) + "\""});
  }
  db.AddFact("wide", {"a", "b", "c", "d", "e"});
  auto program =
      datalog::ParseProgram("edge(?X, ?Y) -> exists ?Z hop(?Y, ?Z) .\n", dict);
  EXPECT_TRUE(program.ok());
  EXPECT_TRUE(RunChase(*program, &db).ok());
  EXPECT_GT(db.null_count(), 0u);

  std::string bytes;
  EXPECT_TRUE(chase::SaveFactsToString(db, &bytes).ok());
  return bytes;
}

Result<chase::Instance> TryLoad(const std::string& bytes) {
  return chase::LoadFactsFromString(bytes, std::make_shared<Dictionary>(),
                                    "<fuzz>");
}

TEST(FactDumpFuzzTest, PristineBytesLoad) {
  const std::string bytes = BuildDump();
  auto loaded = TryLoad(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST(FactDumpFuzzTest, FiftyTruncationsAllRejected) {
  const std::string bytes = BuildDump();
  ASSERT_GT(bytes.size(), 50u);
  // Fixed seed: every CI run fuzzes the same 50 cut points, so a
  // failure here reproduces locally byte for byte.
  std::mt19937 rng(0xD0D0F00Du);
  for (int i = 0; i < 50; ++i) {
    const size_t cut = rng() % bytes.size();  // strictly shorter than full
    auto loaded = TryLoad(bytes.substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "truncation to " << cut << " of "
                              << bytes.size() << " bytes loaded";
    if (loaded.ok()) continue;
    const StatusCode code = loaded.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kInvalidArgument)
        << loaded.status().ToString();
  }
}

TEST(FactDumpFuzzTest, FiftyBitFlipsAllRejected) {
  const std::string bytes = BuildDump();
  std::mt19937 rng(0xBADC0DEu);
  for (int i = 0; i < 50; ++i) {
    std::string mutated = bytes;
    const size_t at = rng() % mutated.size();
    mutated[at] = static_cast<char>(mutated[at] ^ (1u << (rng() % 8)));
    // The CRC32 footer covers the whole image, so EVERY single-bit flip
    // must be caught — including flips inside the footer itself.
    auto loaded = TryLoad(mutated);
    EXPECT_FALSE(loaded.ok())
        << "bit flip at byte " << at << " loaded anyway";
  }
}

TEST(FactDumpFuzzTest, StructuralGarbageRejectedNotCrashed) {
  // Hand-picked nasties beyond random flips: empty input, magic only, a
  // header promising far more than the buffer holds.
  EXPECT_FALSE(TryLoad("").ok());
  EXPECT_FALSE(TryLoad("TRIQ").ok());
  EXPECT_FALSE(TryLoad(std::string(4096, '\0')).ok());
  const std::string bytes = BuildDump();
  // Keep the prefix (magic/version survive) but swap in a huge length
  // field region by repeating the tail — CRC catches the splice.
  std::string spliced = bytes.substr(0, bytes.size() / 2) +
                        bytes.substr(0, bytes.size() / 2);
  EXPECT_FALSE(TryLoad(spliced).ok());
}

}  // namespace
}  // namespace triq

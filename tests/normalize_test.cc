#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "chase/chase.h"
#include "datalog/classify.h"
#include "datalog/normalize.h"
#include "datalog/parser.h"
#include "test_util.h"

namespace triq::datalog {
namespace {

using test::Dict;
using test::Parse;

/// Canonical rendering of the null-free facts over the predicates of
/// `original` — the preserved quantity of all Section 6.3 transforms.
std::string GroundSignature(const chase::Instance& db,
                            const Program& original) {
  std::unordered_set<PredicateId> preds = original.Predicates();
  std::vector<std::string> lines;
  for (const datalog::Atom& fact : db.GroundFacts()) {
    if (preds.count(fact.predicate) > 0) {
      lines.push_back(AtomToString(fact, db.dict()));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream out;
  for (const std::string& line : lines) out << line << '\n';
  return out.str();
}

void ExpectSameGroundSemantics(const Program& original,
                               const Program& transformed,
                               const chase::Instance& db) {
  chase::Instance d1(db.dict_ptr());
  chase::Instance d2(db.dict_ptr());
  for (const auto& [pred, rel] : db.relations()) {
    for (chase::TupleView t : rel.tuples()) {
      d1.AddFact(pred, t);
      d2.AddFact(pred, t);
    }
  }
  ASSERT_TRUE(chase::RunChase(original, &d1).ok());
  ASSERT_TRUE(chase::RunChase(transformed, &d2).ok());
  EXPECT_EQ(GroundSignature(d1, original), GroundSignature(d2, original));
}

TEST(SingleExistentialTest, SplitsDoubleInvention) {
  auto dict = Dict();
  Program program = Parse(
      "coauthor(?X, ?Y) -> exists ?Z ?W joint(?X, ?Y, ?Z, ?W) .", dict);
  Program normalized = NormalizeSingleExistential(program);
  // 1 rule with 2 existentials -> 2 chain rules + 1 final rule.
  EXPECT_EQ(normalized.size(), 3u);
  for (const Rule& rule : normalized.rules()) {
    EXPECT_LE(rule.ExistentialVariables().size(), 1u);
  }
}

TEST(SingleExistentialTest, LeavesSimpleRulesAlone) {
  auto dict = Dict();
  Program program = Parse(R"(
    p(?X) -> exists ?Y s(?X, ?Y) .
    e(?X, ?Y) -> tc(?X, ?Y) .
  )",
                          dict);
  Program normalized = NormalizeSingleExistential(program);
  EXPECT_EQ(normalized.ToString(), program.ToString());
}

TEST(SingleExistentialTest, PreservesGroundSemantics) {
  auto dict = Dict();
  Program program = Parse(R"(
    pair(?X, ?Y) -> exists ?Z ?W link(?X, ?Z), link(?Y, ?W) .
    link(?X, ?Z), base(?X) -> good(?X) .
  )",
                          dict);
  chase::Instance db(dict);
  db.AddFact("pair", {"a", "b"});
  db.AddFact("base", {"a"});
  ExpectSameGroundSemantics(program, NormalizeSingleExistential(program), db);
}

TEST(SingleExistentialTest, PreservesWardedness) {
  auto dict = Dict();
  Program program = Parse(
      "person(?X) -> exists ?Y ?Z rel(?X, ?Y, ?Z) .", dict);
  EXPECT_TRUE(IsWarded(program));
  Program normalized = NormalizeSingleExistential(program);
  EXPECT_TRUE(IsWarded(normalized)) << IsWarded(normalized).reason;
}

TEST(WardedSplitTest, SplitsRuleWithHarmfulRest) {
  auto dict = Dict();
  // The ward val(?C, ?D) carries the dangerous ?D; the rest of the body
  // contains the harmful (but non-dangerous) ?H, so the Section 6.3
  // normalization must factor the rest through a head-grounded rule.
  Program program = Parse(R"(
    gen(?C) -> exists ?H val(?C, ?H) .
    val(?C, ?D), cfg(?C), val(?C2, ?H) -> out(?D) .
  )",
                          dict);
  Program split = NormalizeWardedSplit(program);
  EXPECT_GT(split.size(), program.size());
  // Every rule now has at most one body atom with harmful variables.
  Program positive = split.PositiveVersion();
  PositionAnalysis analysis(positive);
  for (const Rule& rule : split.rules()) {
    VariableClasses classes = analysis.Classify(rule);
    int harmful_atoms = 0;
    for (const Atom& a : rule.body) {
      std::vector<Term> vars;
      a.CollectVariables(&vars);
      bool harmful = std::any_of(vars.begin(), vars.end(), [&](Term v) {
        return !classes.IsHarmless(v);
      });
      if (harmful) ++harmful_atoms;
    }
    EXPECT_LE(harmful_atoms, 1)
        << RuleToString(rule, split.dict());
  }
}

TEST(WardedSplitTest, PreservesGroundSemantics) {
  auto dict = Dict();
  Program program = Parse(R"(
    start(?V) -> exists ?W succ(?V, ?W) .
    succ(?V, ?W), mark(?V), lab(?V, ?L) -> out(?L) .
  )",
                          dict);
  chase::Instance db(dict);
  db.AddFact("start", {"v1"});
  db.AddFact("mark", {"v1"});
  db.AddFact("lab", {"v1", "red"});
  db.AddFact("start", {"v2"});
  db.AddFact("lab", {"v2", "blue"});
  ExpectSameGroundSemantics(program, NormalizeWardedSplit(program), db);
}

TEST(WardedSplitTest, LeavesDatalogAlone) {
  auto dict = Dict();
  Program program = Parse(R"(
    e(?X, ?Y) -> tc(?X, ?Y) .
    e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .
  )",
                          dict);
  Program split = NormalizeWardedSplit(program);
  EXPECT_EQ(split.ToString(), program.ToString());
}

TEST(EliminateNegationTest, ComplementIsMaterialized) {
  auto dict = Dict();
  Program program = Parse(R"(
    edge(?X, ?Y) -> reached(?Y) .
    node(?X), not reached(?X) -> source(?X) .
  )",
                          dict);
  chase::Instance db(dict);
  db.AddFact("node", {"a"});
  db.AddFact("node", {"b"});
  db.AddFact("edge", {"a", "b"});
  auto result = EliminateNegation(program, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto& [positive, augmented] = *result;
  // The rewritten program has no negation left.
  for (const Rule& rule : positive.rules()) {
    for (const Atom& a : rule.body) EXPECT_FALSE(a.negated);
  }
  // not~reached holds exactly the non-reached constants.
  const chase::Relation* comp =
      augmented.Find(dict->Intern("not~reached"));
  ASSERT_NE(comp, nullptr);
  EXPECT_TRUE(comp->Contains({chase::Term::Constant(dict->Intern("a"))}));
  EXPECT_FALSE(comp->Contains({chase::Term::Constant(dict->Intern("b"))}));
}

TEST(EliminateNegationTest, EquivalentOnStratifiedProgram) {
  auto dict = Dict();
  Program program = Parse(R"(
    succ0(?X, ?Y) -> less0(?X, ?Y) .
    succ0(?X, ?Y), less0(?Y, ?Z) -> less0(?X, ?Z) .
    less0(?X, ?Y) -> not_max(?X) .
    less0(?X, ?Y) -> not_min(?Y) .
    less0(?X, ?Y), not not_min(?X) -> zero0(?X) .
    less0(?Y, ?X), not not_max(?X) -> max0(?X) .
  )",
                          dict);
  chase::Instance db(dict);
  for (int i = 0; i < 4; ++i) {
    db.AddFact("succ0", {std::to_string(i), std::to_string(i + 1)});
  }
  auto result = EliminateNegation(program, db);
  ASSERT_TRUE(result.ok());
  auto& [positive, augmented] = *result;

  chase::Instance direct(dict);
  for (int i = 0; i < 4; ++i) {
    direct.AddFact("succ0", {std::to_string(i), std::to_string(i + 1)});
  }
  ASSERT_TRUE(chase::RunChase(program, &direct).ok());
  chase::Instance rewritten = augmented.CloneFacts();
  ASSERT_TRUE(chase::RunChase(positive, &rewritten).ok());
  EXPECT_EQ(GroundSignature(direct, program),
            GroundSignature(rewritten, program));
}

TEST(EliminateNegationTest, RejectsUnstratified) {
  auto dict = Dict();
  Program program = Parse(R"(
    n(?X), not q(?X) -> p(?X) .
    n(?X), not p(?X) -> q(?X) .
  )",
                          dict);
  chase::Instance db(dict);
  db.AddFact("n", {"a"});
  EXPECT_FALSE(EliminateNegation(program, db).ok());
}

TEST(EliminateNegationTest, ZeroAryNegation) {
  auto dict = Dict();
  Program program = Parse(R"(
    trigger(?X) -> flag() .
    item(?X), not flag() -> lonely(?X) .
  )",
                          dict);
  chase::Instance db(dict);
  db.AddFact("item", {"a"});
  auto result = EliminateNegation(program, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto& [positive, augmented] = *result;
  chase::Instance out = augmented.CloneFacts();
  ASSERT_TRUE(chase::RunChase(positive, &out).ok());
  EXPECT_NE(out.Find(dict->Intern("lonely")), nullptr);
}

}  // namespace
}  // namespace triq::datalog

#include <gtest/gtest.h>

#include <memory>

#include "chase/chase.h"
#include "core/expressive.h"
#include "core/triq.h"
#include "datalog/classify.h"
#include "datalog/parser.h"
#include "owl/generator.h"
#include "owl/rdf_mapping.h"
#include "sparql/parser.h"
#include "translate/sparql_to_datalog.h"

namespace triq::core {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

TEST(GroundConnectionTest, CountsCooccurringConstants) {
  auto dict = Dict();
  chase::Instance db(dict);
  chase::Term z = db.AllocateNull(1);
  chase::Term a = chase::Term::Constant(dict->Intern("a"));
  chase::Term b = chase::Term::Constant(dict->Intern("b"));
  chase::Term c = chase::Term::Constant(dict->Intern("c"));
  db.AddFact(dict->Intern("p"), {z, a});
  db.AddFact(dict->Intern("p"), {z, b});
  db.AddFact(dict->Intern("q"), {c, c});
  EXPECT_EQ(GroundConnection(db, z), 2u);
  EXPECT_EQ(MaxGroundConnection(db), 2u);
}

TEST(GroundConnectionTest, NoNullsMeansZero) {
  auto dict = Dict();
  chase::Instance db(dict);
  db.AddFact("p", {"a", "b"});
  EXPECT_EQ(MaxGroundConnection(db), 0u);
}

// Lemma 6.5: the warded entailment-regime program connects one null
// with n constants on the family (G_n) — mgc grows with n.
TEST(UgcpTest, WardedProgramHasUnboundedGroundConnection) {
  size_t previous = 0;
  for (int n : {2, 4, 8}) {
    auto dict = Dict();
    owl::Ontology o = owl::ChainOntology(n, dict.get());
    rdf::Graph g(dict);
    owl::OntologyToGraph(o, &g);
    auto pattern = sparql::ParsePattern("{ c p _:B }", dict.get());
    ASSERT_TRUE(pattern.ok());
    translate::TranslationOptions options;
    options.regime = translate::Regime::kAll;
    auto translated = translate::TranslatePattern(**pattern, dict, options);
    ASSERT_TRUE(translated.ok());
    chase::Instance db = chase::Instance::FromGraph(g);
    ASSERT_TRUE(chase::RunChase(translated->program, &db).ok());
    size_t mgc = MaxGroundConnection(db);
    EXPECT_GE(mgc, static_cast<size_t>(n));  // >= the n class URIs
    EXPECT_GT(mgc, previous);
    previous = mgc;
  }
}

// Lemma 6.6: a nearly-frontier-guarded program's mgc stays constant.
TEST(UgcpTest, NearlyFrontierGuardedIsBounded) {
  size_t first = 0;
  for (int n : {2, 8, 32}) {
    auto dict = Dict();
    datalog::Program program = NearlyFrontierGuardedDemoProgram(dict);
    ASSERT_TRUE(datalog::IsNearlyFrontierGuarded(program));
    chase::Instance db(dict);
    for (int i = 0; i < n; ++i) {
      db.AddFact("p0", {"c" + std::to_string(i)});
    }
    ASSERT_TRUE(chase::RunChase(program, &db).ok());
    size_t mgc = MaxGroundConnection(db);
    if (n == 2) first = mgc;
    EXPECT_EQ(mgc, first);  // constant in n
    EXPECT_LE(mgc, 2u);
  }
}

// Theorem 7.1: the Pep separation instance behaves as in the proof.
TEST(PepTest, WardedDistinguishesLambda1FromLambda2) {
  auto dict = Dict();
  PepSeparation sep = BuildPepSeparation(dict);
  ASSERT_TRUE(datalog::IsWarded(sep.base));

  datalog::Program q1 = sep.base;
  ASSERT_TRUE(q1.Append(sep.lambda1).ok());
  auto query1 = TriqQuery::Create(std::move(q1), "q");
  ASSERT_TRUE(query1.ok());
  auto answers1 = query1->Evaluate(sep.database);
  ASSERT_TRUE(answers1.ok());
  EXPECT_EQ(answers1->size(), 1u);  // () ∈ Q1(D)

  datalog::Program q2 = sep.base;
  ASSERT_TRUE(q2.Append(sep.lambda2).ok());
  auto query2 = TriqQuery::Create(std::move(q2), "q");
  ASSERT_TRUE(query2.ok());
  auto answers2 = query2->Evaluate(sep.database);
  ASSERT_TRUE(answers2.ok());
  EXPECT_TRUE(answers2->empty());  // () ∉ Q2(D)
}

// For *Datalog* programs, Λ1 answering () forces Λ2 to answer () as
// well on D = {p(c)} — checked here for a few candidate programs, as in
// the proof of Theorem 7.1.
TEST(PepTest, DatalogCannotSeparate) {
  for (std::string_view base_text :
       {"p(?X) -> s(?X, ?X) .", "p(?X) -> s(?X, c) .",
        "p(?X), p(?Y) -> s(?X, ?Y) ."}) {
    auto dict = Dict();
    auto base = datalog::ParseProgram(base_text, dict);
    ASSERT_TRUE(base.ok());
    PepSeparation sep = BuildPepSeparation(dict);

    auto eval = [&](const datalog::Program& lambda) {
      datalog::Program q = *base;
      EXPECT_TRUE(q.Append(lambda).ok());
      auto query = TriqQuery::Create(std::move(q), "q");
      EXPECT_TRUE(query.ok());
      auto answers = query->Evaluate(sep.database);
      EXPECT_TRUE(answers.ok());
      return !answers->empty();
    };
    bool q1 = eval(sep.lambda1);
    bool q2 = eval(sep.lambda2);
    // Datalog derives only ground atoms over dom(D) ∪ constants: if
    // s(t1,t2) holds then p(t2) ∈ {p(c)} as well, so q1 -> q2.
    EXPECT_TRUE(!q1 || q2) << base_text;
  }
}

}  // namespace
}  // namespace triq::core

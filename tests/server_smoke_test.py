#!/usr/bin/env python3
"""Smoke test for tools/triq_server: start it on an ephemeral port, run a
scripted client session exercising every command (including an error
that must NOT wedge the connection), then shut it down cleanly.

Usage: server_smoke_test.py <path-to-triq_server>
"""

import socket
import subprocess
import sys


def send(f, command):
    """Sends one command; reads the reply up to its OK/ERR terminator."""
    f.write(command + "\n")
    f.flush()
    lines = []
    while True:
        line = f.readline()
        if not line:
            raise AssertionError(f"connection closed mid-reply to {command!r}")
        line = line.strip()
        lines.append(line)
        if line.startswith("OK") or line.startswith("ERR"):
            return lines


def expect(condition, message):
    if not condition:
        raise AssertionError(message)


def main():
    server = sys.argv[1]
    proc = subprocess.Popen(
        [server, "--port", "0", "--workers", "3"],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = proc.stdout.readline().split()
        expect(banner[0] == "LISTENING", f"bad banner: {banner}")
        port = int(banner[1])

        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            f = s.makefile("rw")
            expect(send(f, "PING") == ["OK pong"], "PING failed")
            expect(send(f, "ADD a edge b") == ["OK added"], "ADD failed")
            expect(send(f, "ADD b edge c") == ["OK added"], "ADD failed")
            expect(
                send(
                    f,
                    "RULE triple(?X, edge, ?Y) -> tc(?X, ?Y) . "
                    "tc(?X, ?Y), triple(?Y, edge, ?Z) -> tc(?X, ?Z) .",
                )
                == ["OK attached"],
                "RULE failed",
            )
            reply = send(f, "MATERIALIZE")
            expect(reply[0].startswith("OK materialized"), f"MATERIALIZE: {reply}")

            reply = send(f, "ANSWERS tc")
            rows = {line for line in reply if line.startswith("ROW")}
            expect(
                rows == {"ROW a b", "ROW b c", "ROW a c"} and reply[-1] == "OK 3",
                f"ANSWERS tc: {reply}",
            )

            # An erroring command must leave the connection (and session)
            # usable: session hygiene is the whole point of the server.
            reply = send(f, "SPARQL this is not a pattern")
            expect(reply[0].startswith("ERR"), f"bad SPARQL accepted: {reply}")
            reply = send(f, "SPARQL { ?x edge ?y }")
            expect(reply[-1] == "OK 2", f"SPARQL: {reply}")
            reply = send(f, "SPARQL { ?x edge ?y }")  # cache hit path
            expect(reply[-1] == "OK 2", f"repeat SPARQL: {reply}")

            reply = send(f, "STATS")
            stats = dict(
                line.split()[1:3] for line in reply if line.startswith("STAT")
            )
            expect(stats.get("materializations") == "1", f"STATS: {reply}")
            expect(stats.get("sparql_cache_hits") == "1", f"STATS: {reply}")

            # Static analysis of the session's data program: the attached
            # tc rules are pure datalog, so the verdict is a guarantee.
            reply = send(f, "ANALYZE")
            analysis = dict(
                line.split()[1:3] for line in reply if line.startswith("STAT")
            )
            expect(reply[-1] == "OK", f"ANALYZE: {reply}")
            expect(
                analysis.get("verdict") == "guaranteed-terminating",
                f"ANALYZE verdict: {reply}",
            )
            expect(analysis.get("method") == "datalog", f"ANALYZE: {reply}")
            expect(analysis.get("lint_errors") == "0", f"ANALYZE: {reply}")

            # EXPLAIN renders one PLAN line per join-plan line: the rule,
            # its strategy, and one access-path line per body atom with a
            # cardinality estimate.
            reply = send(f, "EXPLAIN")
            plans = [line for line in reply if line.startswith("PLAN")]
            expect(reply[-1] == "OK", f"EXPLAIN: {reply}")
            expect(
                any("strategy:" in line for line in plans),
                f"EXPLAIN shows no strategy: {reply}",
            )
            expect(
                any("rows~" in line for line in plans),
                f"EXPLAIN shows no estimates: {reply}",
            )
            expect(
                any("tc(?X, ?Y), triple(?Y, edge, ?Z)" in line for line in plans),
                f"EXPLAIN misses the tc rule: {reply}",
            )

            # EXPLAIN <pattern>: the translated SPARQL query's plans — a
            # triangle pattern must engage the leapfrog operator.
            reply = send(
                f, "EXPLAIN { ?x edge ?y . ?y edge ?z . ?z edge ?x }"
            )
            expect(reply[-1] == "OK", f"EXPLAIN pattern: {reply}")
            expect(
                any("leapfrog" in line for line in reply),
                f"EXPLAIN pattern chose no leapfrog: {reply}",
            )

            # An EXPLAIN parse error must not wedge the session either.
            reply = send(f, "EXPLAIN not a pattern")
            expect(reply[0].startswith("ERR"), f"bad EXPLAIN accepted: {reply}")
            expect(send(f, "PING") == ["OK pong"], "PING after bad EXPLAIN")

        # A second concurrent-style connection still works after the first
        # closed, and SHUTDOWN stops the whole server.
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            f = s.makefile("rw")
            expect(send(f, "PING") == ["OK pong"], "second connection PING")
            expect(
                send(f, "SHUTDOWN") == ["OK shutting-down"], "SHUTDOWN failed"
            )

        proc.wait(timeout=15)
        expect(proc.returncode == 0, f"server exit code {proc.returncode}")
        print("server smoke test passed")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()

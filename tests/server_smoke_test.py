#!/usr/bin/env python3
"""Smoke test for tools/triq_server.

Phase 1: start it on an ephemeral port, run a scripted client session
exercising every command (including an error that must NOT wedge the
connection), then shut it down cleanly with SHUTDOWN.

Phase 2: restart it with the hardening limits dialed down and play a
misbehaving-client mix against it — an oversized line (must get ERR, not
unbounded buffering), a connection over --max-conns (must be shed with
ERR BUSY, not queued), an idle client (must be reaped), and finally a
SIGTERM with a connection still open (must drain and exit 0).

Usage: server_smoke_test.py <path-to-triq_server>
"""

import signal
import socket
import subprocess
import sys
import time


def connect(port, attempts=8):
    """Connects with exponential backoff: the accept loop may briefly lag
    the LISTENING banner, and transient refusals must not flake CI."""
    delay = 0.05
    for attempt in range(attempts):
        try:
            return socket.create_connection(("127.0.0.1", port), timeout=10)
        except OSError:
            if attempt == attempts - 1:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


def send(f, command):
    """Sends one command; reads the reply up to its OK/ERR terminator."""
    f.write(command + "\n")
    f.flush()
    lines = []
    while True:
        line = f.readline()
        if not line:
            raise AssertionError(f"connection closed mid-reply to {command!r}")
        line = line.strip()
        lines.append(line)
        if line.startswith("OK") or line.startswith("ERR"):
            return lines


def expect(condition, message):
    if not condition:
        raise AssertionError(message)


def expect_closed(f, message):
    """EOF or RST both count: closing with unread client bytes still in
    the kernel buffer (the oversized-line case) resets rather than FINs."""
    try:
        expect(f.readline() == "", message)
    except ConnectionResetError:
        pass


def admitted_connect(port):
    """Connects AND gets past admission control: under --max-conns 1 the
    worker may still be tearing down the previous connection, so retry
    on ERR BUSY until a PING round-trips."""
    delay = 0.05
    for _ in range(20):
        s = connect(port)
        f = s.makefile("rw")
        f.write("PING\n")
        f.flush()
        if f.readline().strip() == "OK pong":
            return s, f
        s.close()
        time.sleep(delay)
        delay = min(delay * 2, 0.5)
    raise AssertionError("never admitted past ERR BUSY")


def start_server(server, *extra_flags):
    proc = subprocess.Popen(
        [server, "--port", "0", "--workers", "3", *extra_flags],
        stdout=subprocess.PIPE,
        text=True,
    )
    banner = proc.stdout.readline().split()
    expect(banner and banner[0] == "LISTENING", f"bad banner: {banner}")
    return proc, int(banner[1])


def scripted_session(server):
    proc, port = start_server(server)
    try:
        with connect(port) as s:
            f = s.makefile("rw")
            expect(send(f, "PING") == ["OK pong"], "PING failed")
            expect(send(f, "ADD a edge b") == ["OK added"], "ADD failed")
            expect(send(f, "ADD b edge c") == ["OK added"], "ADD failed")
            expect(
                send(
                    f,
                    "RULE triple(?X, edge, ?Y) -> tc(?X, ?Y) . "
                    "tc(?X, ?Y), triple(?Y, edge, ?Z) -> tc(?X, ?Z) .",
                )
                == ["OK attached"],
                "RULE failed",
            )
            reply = send(f, "MATERIALIZE")
            expect(reply[0].startswith("OK materialized"), f"MATERIALIZE: {reply}")

            reply = send(f, "ANSWERS tc")
            rows = {line for line in reply if line.startswith("ROW")}
            expect(
                rows == {"ROW a b", "ROW b c", "ROW a c"} and reply[-1] == "OK 3",
                f"ANSWERS tc: {reply}",
            )

            # An erroring command must leave the connection (and session)
            # usable: session hygiene is the whole point of the server.
            reply = send(f, "SPARQL this is not a pattern")
            expect(reply[0].startswith("ERR"), f"bad SPARQL accepted: {reply}")
            reply = send(f, "SPARQL { ?x edge ?y }")
            expect(reply[-1] == "OK 2", f"SPARQL: {reply}")
            reply = send(f, "SPARQL { ?x edge ?y }")  # cache hit path
            expect(reply[-1] == "OK 2", f"repeat SPARQL: {reply}")

            reply = send(f, "STATS")
            stats = dict(
                line.split()[1:3] for line in reply if line.startswith("STAT")
            )
            expect(stats.get("materializations") == "1", f"STATS: {reply}")
            expect(stats.get("sparql_cache_hits") == "1", f"STATS: {reply}")
            expect(stats.get("journal_enabled") == "false", f"STATS: {reply}")

            # Static analysis of the session's data program: the attached
            # tc rules are pure datalog, so the verdict is a guarantee.
            reply = send(f, "ANALYZE")
            analysis = dict(
                line.split()[1:3] for line in reply if line.startswith("STAT")
            )
            expect(reply[-1] == "OK", f"ANALYZE: {reply}")
            expect(
                analysis.get("verdict") == "guaranteed-terminating",
                f"ANALYZE verdict: {reply}",
            )
            expect(analysis.get("method") == "datalog", f"ANALYZE: {reply}")
            expect(analysis.get("lint_errors") == "0", f"ANALYZE: {reply}")

            # EXPLAIN renders one PLAN line per join-plan line: the rule,
            # its strategy, and one access-path line per body atom with a
            # cardinality estimate.
            reply = send(f, "EXPLAIN")
            plans = [line for line in reply if line.startswith("PLAN")]
            expect(reply[-1] == "OK", f"EXPLAIN: {reply}")
            expect(
                any("strategy:" in line for line in plans),
                f"EXPLAIN shows no strategy: {reply}",
            )
            expect(
                any("rows~" in line for line in plans),
                f"EXPLAIN shows no estimates: {reply}",
            )
            expect(
                any("tc(?X, ?Y), triple(?Y, edge, ?Z)" in line for line in plans),
                f"EXPLAIN misses the tc rule: {reply}",
            )

            # EXPLAIN <pattern>: the translated SPARQL query's plans — a
            # triangle pattern must engage the leapfrog operator.
            reply = send(
                f, "EXPLAIN { ?x edge ?y . ?y edge ?z . ?z edge ?x }"
            )
            expect(reply[-1] == "OK", f"EXPLAIN pattern: {reply}")
            expect(
                any("leapfrog" in line for line in reply),
                f"EXPLAIN pattern chose no leapfrog: {reply}",
            )

            # An EXPLAIN parse error must not wedge the session either.
            reply = send(f, "EXPLAIN not a pattern")
            expect(reply[0].startswith("ERR"), f"bad EXPLAIN accepted: {reply}")
            expect(send(f, "PING") == ["OK pong"], "PING after bad EXPLAIN")

        # A second concurrent-style connection still works after the first
        # closed, and SHUTDOWN stops the whole server.
        with connect(port) as s:
            f = s.makefile("rw")
            expect(send(f, "PING") == ["OK pong"], "second connection PING")
            expect(
                send(f, "SHUTDOWN") == ["OK shutting-down"], "SHUTDOWN failed"
            )

        proc.wait(timeout=15)
        expect(proc.returncode == 0, f"server exit code {proc.returncode}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def misbehaving_clients(server):
    proc, port = start_server(
        server,
        "--max-conns", "1",
        "--idle-timeout-ms", "600",
        "--max-line", "1024",
        "--write-timeout-ms", "2000",
    )
    try:
        # Admission control: while one connection is held open, a second
        # must be shed immediately with ERR BUSY — not queued behind it.
        with connect(port) as held:
            hf = held.makefile("rw")
            expect(send(hf, "PING") == ["OK pong"], "held connection PING")
            with connect(port) as shed:
                sf = shed.makefile("rw")
                line = sf.readline().strip()
                expect(
                    line.startswith("ERR BUSY"), f"expected ERR BUSY, got {line!r}"
                )
                expect_closed(sf, "shed connection not closed")
            # The held connection was untouched by the shedding.
            expect(send(hf, "PING") == ["OK pong"], "held PING after shed")

        # Oversized line: a newline-free flood past --max-line gets an ERR
        # and a close, never unbounded buffering or a hang.
        s, f = admitted_connect(port)
        with s:
            f.write("x" * 5000)
            f.flush()
            line = f.readline().strip()
            expect(
                line.startswith("ERR line too long"),
                f"expected ERR line too long, got {line!r}",
            )
            expect_closed(f, "oversized-line connection not closed")

        # Idle reaping: a silent client is told why and disconnected.
        s, f = admitted_connect(port)
        with s:
            start = time.monotonic()
            line = f.readline().strip()  # blocks until the reaper speaks
            waited = time.monotonic() - start
            expect(
                line.startswith("ERR idle timeout"),
                f"expected ERR idle timeout, got {line!r}",
            )
            expect(waited >= 0.3, f"reaped suspiciously fast ({waited:.2f}s)")
            expect_closed(f, "idle connection not closed")

        # Graceful drain: SIGTERM with a connection still open must stop
        # accepting, close out, and exit 0 — the systemd-stop path.
        s, f = admitted_connect(port)
        with s:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=15)
            expect(
                proc.returncode == 0, f"SIGTERM exit code {proc.returncode}"
            )
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def main():
    server = sys.argv[1]
    scripted_session(server)
    misbehaving_clients(server)
    print("server smoke test passed")


if __name__ == "__main__":
    main()

#include <gtest/gtest.h>

#include <memory>

#include "rdf/graph.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace triq::sparql {
namespace {

using test::Dict;

std::unique_ptr<GraphPattern> Parse(std::string_view text, Dictionary* dict) {
  auto pattern = ParsePattern(text, dict);
  EXPECT_TRUE(pattern.ok()) << pattern.status().ToString();
  return std::move(pattern).value();
}

rdf::Graph AuthorsGraph(std::shared_ptr<Dictionary> dict) {
  rdf::Graph g(std::move(dict));
  g.Add("dbUllman", "is_author_of", "\"The Complete Book\"");
  g.Add("dbUllman", "name", "\"Jeffrey Ullman\"");
  g.Add("dbAho", "name", "\"Alfred Aho\"");
  g.Add("dbAho", "phone", "\"555\"");
  return g;
}

TEST(SparqlEvalTest, BasicPatternJoin) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  // Query (1) of Section 2.
  auto p = Parse("{ ?Y is_author_of ?Z . ?Y name ?X }", dict.get());
  MappingSet result = Evaluate(*p, g);
  ASSERT_EQ(result.size(), 1u);
  const SparqlMapping& m = result.mappings()[0];
  EXPECT_EQ(dict->Text(m.Get(dict->Intern("?X"))), "\"Jeffrey Ullman\"");
}

TEST(SparqlEvalTest, SelectProjects) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse("SELECT(?X, { ?Y is_author_of ?Z . ?Y name ?X })",
                 dict.get());
  MappingSet result = Evaluate(*p, g);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.mappings()[0].size(), 1u);
}

TEST(SparqlEvalTest, BlankNodeActsAsExistential) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  // P2 of Example 5.1: who has a name.
  auto p = Parse("{ ?X name _:B }", dict.get());
  MappingSet result = Evaluate(*p, g);
  EXPECT_EQ(result.size(), 2u);
  for (const SparqlMapping& m : result.mappings()) {
    EXPECT_EQ(m.size(), 1u);  // blank is projected away
  }
}

TEST(SparqlEvalTest, SharedBlankNodeJoins) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("a", "p", "x");
  g.Add("x", "q", "b");
  g.Add("y", "q", "c");
  auto p = Parse("{ ?X p _:B . _:B q ?Y }", dict.get());
  MappingSet result = Evaluate(*p, g);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(dict->Text(result.mappings()[0].Get(dict->Intern("?Y"))), "b");
}

TEST(SparqlEvalTest, UnionCombines) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse("UNION({ ?X is_author_of ?Z }, { ?X phone ?Z })",
                 dict.get());
  MappingSet result = Evaluate(*p, g);
  EXPECT_EQ(result.size(), 2u);
}

TEST(SparqlEvalTest, OptKeepsUnmatchedLeft) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  // P3 of Example 5.1: names, optionally phones.
  auto p = Parse("OPT({ ?X name ?Y }, { ?X phone ?Z })", dict.get());
  MappingSet result = Evaluate(*p, g);
  ASSERT_EQ(result.size(), 2u);
  SymbolId z = dict->Intern("?Z");
  int with_phone = 0;
  for (const SparqlMapping& m : result.mappings()) {
    if (m.IsBound(z)) ++with_phone;
  }
  EXPECT_EQ(with_phone, 1);
}

TEST(SparqlEvalTest, OptIsNotSymmetric) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse("OPT({ ?X phone ?Z }, { ?X name ?Y })", dict.get());
  MappingSet result = Evaluate(*p, g);
  ASSERT_EQ(result.size(), 1u);  // only dbAho has a phone
  EXPECT_TRUE(result.mappings()[0].IsBound(dict->Intern("?Y")));
}

TEST(SparqlEvalTest, CartesianProductOnDisjointVars) {
  // The P4 phenomenon of Example 5.1: unbound ?Z joins with everything.
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("a", "name", "n1");
  g.Add("b", "name", "n2");
  g.Add("p1", "phone_company", "acme");
  g.Add("p2", "phone_company", "bell");
  auto p = Parse(
      "AND(OPT({ ?X name ?Y }, { ?X phone ?Z }),"
      "    { ?Z phone_company ?W })",
      dict.get());
  MappingSet result = Evaluate(*p, g);
  // No phones: every name pairs with every phone company: 2 x 2.
  EXPECT_EQ(result.size(), 4u);
}

TEST(SparqlEvalTest, FilterBound) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse("FILTER(OPT({ ?X name ?Y }, { ?X phone ?Z }), bound(?Z))",
                 dict.get());
  MappingSet result = Evaluate(*p, g);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(dict->Text(result.mappings()[0].Get(dict->Intern("?X"))),
            "dbAho");
}

TEST(SparqlEvalTest, FilterNotBound) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse(
      "FILTER(OPT({ ?X name ?Y }, { ?X phone ?Z }), ! bound(?Z))",
      dict.get());
  MappingSet result = Evaluate(*p, g);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(dict->Text(result.mappings()[0].Get(dict->Intern("?X"))),
            "dbUllman");
}

TEST(SparqlEvalTest, FilterEqConst) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse("FILTER({ ?X name ?Y }, ?X = dbAho)", dict.get());
  MappingSet result = Evaluate(*p, g);
  ASSERT_EQ(result.size(), 1u);
}

TEST(SparqlEvalTest, FilterEqVar) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("a", "p", "a");
  g.Add("a", "p", "b");
  auto p = Parse("FILTER({ ?X p ?Y }, ?X = ?Y)", dict.get());
  MappingSet result = Evaluate(*p, g);
  ASSERT_EQ(result.size(), 1u);
}

TEST(SparqlEvalTest, FilterBooleanConnectives) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse(
      "FILTER({ ?X name ?Y }, (?X = dbAho || ?X = dbUllman))", dict.get());
  EXPECT_EQ(Evaluate(*p, g).size(), 2u);
  auto p2 = Parse(
      "FILTER({ ?X name ?Y }, (?X = dbAho && ?X = dbUllman))", dict.get());
  EXPECT_EQ(Evaluate(*p2, g).size(), 0u);
}

TEST(SparqlEvalTest, EmptyGraphGivesEmptyAnswers) {
  auto dict = Dict();
  rdf::Graph g(dict);
  auto p = Parse("{ ?X name ?Y }", dict.get());
  EXPECT_EQ(Evaluate(*p, g).size(), 0u);
}

TEST(SparqlMappingTest, CompatibilityAndMerge) {
  auto dict = Dict();
  SymbolId x = dict->Intern("?X"), y = dict->Intern("?Y"),
           z = dict->Intern("?Z");
  SymbolId a = dict->Intern("a"), b = dict->Intern("b");
  SparqlMapping m1, m2, m3;
  m1.Bind(x, a);
  m1.Bind(y, b);
  m2.Bind(y, b);
  m2.Bind(z, a);
  m3.Bind(y, a);
  EXPECT_TRUE(SparqlMapping::Compatible(m1, m2));
  EXPECT_FALSE(SparqlMapping::Compatible(m1, m3));
  SparqlMapping merged = SparqlMapping::Merge(m1, m2);
  EXPECT_EQ(merged.size(), 3u);
  // The empty mapping is compatible with everything.
  EXPECT_TRUE(SparqlMapping::Compatible(SparqlMapping(), m1));
}

TEST(SparqlMappingTest, AlgebraOnSmallSets) {
  auto dict = Dict();
  SymbolId x = dict->Intern("?X"), y = dict->Intern("?Y");
  SymbolId a = dict->Intern("a"), b = dict->Intern("b"),
           c = dict->Intern("c");
  MappingSet o1, o2;
  SparqlMapping m1, m2, m3;
  m1.Bind(x, a);
  o1.Insert(m1);
  m2.Bind(x, a);
  m2.Bind(y, b);
  o2.Insert(m2);
  m3.Bind(x, c);
  o1.Insert(m3);
  EXPECT_EQ(Join(o1, o2).size(), 1u);        // only x=a joins
  EXPECT_EQ(Union(o1, o2).size(), 3u);
  EXPECT_EQ(Difference(o1, o2).size(), 1u);  // x=c has no partner
  EXPECT_EQ(LeftOuterJoin(o1, o2).size(), 2u);
}

TEST(SparqlParserTest, VariablesAndCertainVariables) {
  auto dict = Dict();
  auto p = Parse("OPT({ ?X name ?Y }, { ?X phone ?Z })", dict.get());
  EXPECT_EQ(p->Variables().size(), 3u);
  std::vector<SymbolId> certain = p->CertainVariables();
  EXPECT_EQ(certain.size(), 2u);  // ?X, ?Y; not ?Z
}

TEST(SparqlParserTest, UnionCertainIsIntersection) {
  auto dict = Dict();
  auto p = Parse("UNION({ ?X p ?Y }, { ?X q ?Z })", dict.get());
  std::vector<SymbolId> certain = p->CertainVariables();
  ASSERT_EQ(certain.size(), 1u);
  EXPECT_EQ(dict->Text(certain[0]), "?X");
}

TEST(SparqlParserTest, RejectsMalformed) {
  auto dict = Dict();
  EXPECT_FALSE(ParsePattern("AND({ ?X p ?Y }", dict.get()).ok());
  EXPECT_FALSE(ParsePattern("{ ?X p }", dict.get()).ok());
  EXPECT_FALSE(ParsePattern("BOGUS({ ?X p ?Y }, { ?X q ?Z })",
                            dict.get())
                   .ok());
  EXPECT_FALSE(ParsePattern("SELECT(, { ?X p ?Y })", dict.get()).ok());
}

TEST(SparqlParserTest, ToStringRoundTrips) {
  auto dict = Dict();
  auto p = Parse(
      "FILTER(OPT({ ?X name ?Y }, { ?X phone ?Z }), bound(?Z))", dict.get());
  auto p2 = Parse(p->ToString(*dict), dict.get());
  EXPECT_EQ(p2->ToString(*dict), p->ToString(*dict));
}

}  // namespace
}  // namespace triq::sparql

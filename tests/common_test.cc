#include <gtest/gtest.h>

#include "common/dictionary.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace triq {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  SymbolId a = dict.Intern("hello");
  SymbolId b = dict.Intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.Text(a), "hello");
}

TEST(DictionaryTest, DistinctStringsGetDistinctIds) {
  Dictionary dict;
  SymbolId a = dict.Intern("a");
  SymbolId b = dict.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, IdZeroIsReserved) {
  Dictionary dict;
  EXPECT_NE(dict.Intern("x"), kInvalidSymbol);
  EXPECT_EQ(dict.Find("never-interned"), kInvalidSymbol);
}

TEST(DictionaryTest, LookupFindsInterned) {
  Dictionary dict;
  SymbolId a = dict.Intern("rdf:type");
  EXPECT_EQ(dict.Find("rdf:type"), a);
}

TEST(DictionaryTest, ManySymbolsRoundTrip) {
  Dictionary dict;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(dict.Intern("sym" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.Text(ids[i]), "sym" + std::to_string(i));
  }
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, InconsistentIsTheTopAnswer) {
  Status s = Status::Inconsistent("constraint fired");
  EXPECT_EQ(s.code(), StatusCode::kInconsistent);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, SplitAndTrim) {
  std::vector<std::string> parts = SplitAndTrim("a, b , ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("some:prop", "some:"));
  EXPECT_FALSE(StartsWith("so", "some:"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

}  // namespace
}  // namespace triq

#include <gtest/gtest.h>

#include <memory>

#include "chase/backward.h"
#include "chase/chase.h"
#include "datalog/parser.h"
#include "owl/generator.h"
#include "owl/rdf_mapping.h"
#include "translate/owl2ql_program.h"
#include "test_util.h"

namespace triq::chase {
namespace {

using test::Dict;
using test::Parse;

datalog::Atom Ground(std::string_view pred,
                     const std::vector<std::string>& args,
                     Dictionary* dict) {
  datalog::Atom atom;
  atom.predicate = dict->Intern(pred);
  for (const std::string& a : args) {
    atom.args.push_back(datalog::Term::Constant(dict->Intern(a)));
  }
  return atom;
}

TEST(BackwardTest, DatabaseFactProvesImmediately) {
  auto dict = Dict();
  datalog::Program program = Parse("p(?X) -> q(?X) .", dict);
  Instance db(dict);
  db.AddFact("q", {"a"});
  auto result = BackwardProve(program, db, Ground("q", {"a"}, dict.get()));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
}

TEST(BackwardTest, OneStepRule) {
  auto dict = Dict();
  datalog::Program program = Parse("p(?X) -> q(?X) .", dict);
  Instance db(dict);
  db.AddFact("p", {"a"});
  EXPECT_TRUE(*BackwardProve(program, db, Ground("q", {"a"}, dict.get())));
  EXPECT_FALSE(*BackwardProve(program, db, Ground("q", {"b"}, dict.get())));
}

TEST(BackwardTest, TransitiveClosureChain) {
  auto dict = Dict();
  datalog::Program program = Parse(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    edge(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .
  )",
                                   dict);
  Instance db(dict);
  for (int i = 0; i < 12; ++i) {
    db.AddFact("edge", {"v" + std::to_string(i), "v" + std::to_string(i + 1)});
  }
  EXPECT_TRUE(
      *BackwardProve(program, db, Ground("tc", {"v0", "v12"}, dict.get())));
  EXPECT_TRUE(
      *BackwardProve(program, db, Ground("tc", {"v3", "v7"}, dict.get())));
  BackwardStats stats;
  auto negative = BackwardProve(program, db,
                                Ground("tc", {"v7", "v3"}, dict.get()), {},
                                &stats);
  ASSERT_TRUE(negative.ok());
  EXPECT_FALSE(*negative);
  EXPECT_FALSE(stats.depth_limited);  // authoritative no
}

TEST(BackwardTest, RightRecursiveVariantAlsoWorks) {
  auto dict = Dict();
  datalog::Program program = Parse(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    tc(?X, ?Y), edge(?Y, ?Z) -> tc(?X, ?Z) .
  )",
                                   dict);
  Instance db(dict);
  for (int i = 0; i < 8; ++i) {
    db.AddFact("edge", {"v" + std::to_string(i), "v" + std::to_string(i + 1)});
  }
  EXPECT_TRUE(
      *BackwardProve(program, db, Ground("tc", {"v0", "v8"}, dict.get())));
}

TEST(BackwardTest, ExistentialWitnessesAreFree) {
  auto dict = Dict();
  // q(a) holds because s(a, z) is invented; the z is a placeholder.
  datalog::Program program = Parse(R"(
    p(?X) -> exists ?Y s(?X, ?Y) .
    s(?X, ?Y) -> q(?X) .
  )",
                                   dict);
  Instance db(dict);
  db.AddFact("p", {"a"});
  EXPECT_TRUE(*BackwardProve(program, db, Ground("q", {"a"}, dict.get())));
  EXPECT_FALSE(*BackwardProve(program, db, Ground("q", {"b"}, dict.get())));
}

TEST(BackwardTest, ExistentialPositionRejectsConstants) {
  auto dict = Dict();
  // s(a, b) for a concrete b is NOT entailed: the invented null is not b
  // (Definition 6.11's compatibility condition (ii)).
  datalog::Program program = Parse("p(?X) -> exists ?Y s(?X, ?Y) .", dict);
  Instance db(dict);
  db.AddFact("p", {"a"});
  EXPECT_FALSE(*BackwardProve(program, db, Ground("s", {"a", "b"},
                                                  dict.get())));
}

TEST(BackwardTest, JointWitnessAcrossSubgoals) {
  auto dict = Dict();
  // good(x) needs link(x, W) and tag(W) for the SAME W.
  datalog::Program program = Parse(R"(
    link(?X, ?W), tag(?W) -> good(?X) .
  )",
                                   dict);
  Instance db(dict);
  db.AddFact("link", {"x", "w1"});
  db.AddFact("link", {"x", "w2"});
  db.AddFact("link", {"y", "w3"});
  db.AddFact("tag", {"w2"});
  EXPECT_TRUE(*BackwardProve(program, db, Ground("good", {"x"}, dict.get())));
  EXPECT_FALSE(
      *BackwardProve(program, db, Ground("good", {"y"}, dict.get())));
}

TEST(BackwardTest, AgreesWithChaseOnOwl2QlChain) {
  auto dict = Dict();
  owl::Ontology o = owl::ChainOntology(4, dict.get());
  rdf::Graph g(dict);
  OntologyToGraph(o, &g);
  datalog::Program regime =
      translate::BuildOwl2QlCoreProgram(dict).WithoutConstraints();

  Instance chased = Instance::FromGraph(g);
  ASSERT_TRUE(RunChase(regime, &chased).ok());

  // Every ground type(·,·) fact of the chase is provable backward.
  const Relation* types = chased.Find(dict->Intern("type"));
  ASSERT_NE(types, nullptr);
  Instance db = Instance::FromGraph(g);
  int checked = 0;
  for (TupleView tuple : types->tuples()) {
    if (!tuple[0].IsConstant() || !tuple[1].IsConstant()) continue;
    datalog::Atom goal{dict->Intern("type"), tuple.ToTuple(), false};
    auto proved = BackwardProve(regime, db, goal);
    ASSERT_TRUE(proved.ok());
    EXPECT_TRUE(*proved) << AtomToString(goal, *dict);
    ++checked;
  }
  EXPECT_GT(checked, 4);
  // And a non-fact is refuted.
  EXPECT_FALSE(*BackwardProve(regime, db,
                              Ground("type", {"a1", "a0"}, dict.get())));
}

TEST(BackwardTest, RejectsNegationAndConstraints) {
  auto dict = Dict();
  datalog::Program with_neg = Parse("p(?X), not q(?X) -> r(?X) .", dict);
  Instance db(dict);
  EXPECT_FALSE(
      BackwardProve(with_neg, db, Ground("r", {"a"}, dict.get())).ok());
  datalog::Program with_bot = Parse("p(?X) -> false .", dict);
  EXPECT_FALSE(
      BackwardProve(with_bot, db, Ground("p", {"a"}, dict.get())).ok());
}

TEST(BackwardTest, RejectsNonGroundGoal) {
  auto dict = Dict();
  datalog::Program program = Parse("p(?X) -> q(?X) .", dict);
  Instance db(dict);
  datalog::Atom goal;
  goal.predicate = dict->Intern("q");
  goal.args = {datalog::Term::Variable(dict->Intern("?X"))};
  EXPECT_FALSE(BackwardProve(program, db, goal).ok());
}

TEST(BackwardTest, MemoHitsOnRepeatedSubgoals) {
  auto dict = Dict();
  datalog::Program program = Parse(R"(
    e(?X, ?Y) -> tc(?X, ?Y) .
    e(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .
    tc(?X, ?Y), tc(?Y, ?Z) -> hop2(?X, ?Z) .
  )",
                                   dict);
  Instance db(dict);
  db.AddFact("e", {"a", "b"});
  db.AddFact("e", {"b", "c"});
  BackwardStats stats;
  EXPECT_TRUE(*BackwardProve(program, db,
                             Ground("hop2", {"a", "c"}, dict.get()), {},
                             &stats));
}

class BackwardVsChaseSweep : public ::testing::TestWithParam<int> {};

TEST_P(BackwardVsChaseSweep, ChainLengthsAgree) {
  int n = GetParam();
  auto dict = Dict();
  datalog::Program program = Parse(R"(
    edge(?X, ?Y) -> tc(?X, ?Y) .
    edge(?X, ?Y), tc(?Y, ?Z) -> tc(?X, ?Z) .
  )",
                                   dict);
  Instance db(dict);
  for (int i = 0; i < n; ++i) {
    db.AddFact("edge", {"v" + std::to_string(i), "v" + std::to_string(i + 1)});
  }
  Instance chased(dict);
  for (int i = 0; i < n; ++i) {
    chased.AddFact("edge",
                   {"v" + std::to_string(i), "v" + std::to_string(i + 1)});
  }
  ASSERT_TRUE(RunChase(program, &chased).ok());
  // Forward and backward agree on every pair.
  for (int a = 0; a <= n; ++a) {
    for (int b = 0; b <= n; ++b) {
      datalog::Atom goal = Ground(
          "tc", {"v" + std::to_string(a), "v" + std::to_string(b)},
          dict.get());
      bool forward = chased.Contains(goal.predicate, goal.args);
      auto backward = BackwardProve(program, db, goal);
      ASSERT_TRUE(backward.ok());
      EXPECT_EQ(forward, *backward) << a << "->" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Chains, BackwardVsChaseSweep,
                         ::testing::Values(2, 5, 9));

}  // namespace
}  // namespace triq::chase

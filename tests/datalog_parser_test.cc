#include <gtest/gtest.h>

#include <memory>

#include "datalog/parser.h"

namespace triq::datalog {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

TEST(ParserTest, ParsesQueryTwoFromThePaper) {
  auto dict = Dict();
  // Rule (2) of Section 2.
  auto program = ParseProgram(
      "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X) .",
      dict);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->size(), 1u);
  const Rule& rule = program->rules()[0];
  EXPECT_EQ(rule.body.size(), 2u);
  EXPECT_EQ(rule.head.size(), 1u);
  EXPECT_EQ(dict->Text(rule.head[0].predicate), "query");
}

TEST(ParserTest, ParsesExistentialRule) {
  auto dict = Dict();
  auto rule = ParseRule(
      "triple(?X, is_coauthor_of, ?Y) -> exists ?Z "
      "triple(?X, is_author_of, ?Z), triple(?Y, is_author_of, ?Z)",
      dict.get());
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head.size(), 2u);
  std::vector<Term> ex = rule->ExistentialVariables();
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(dict->Text(ex[0].symbol()), "?Z");
}

TEST(ParserTest, ImplicitExistentialsWork) {
  auto dict = Dict();
  auto rule = ParseRule("p(?X) -> s(?X, ?Y)", dict.get());
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->ExistentialVariables().size(), 1u);
}

TEST(ParserTest, ParsesNegation) {
  auto dict = Dict();
  auto rule = ParseRule("p(?X), not q(?X) -> r(?X)", dict.get());
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(rule->body[0].negated);
  EXPECT_TRUE(rule->body[1].negated);
}

TEST(ParserTest, ParsesConstraint) {
  auto dict = Dict();
  auto rule = ParseRule("type(?X, ?Y), type(?X, ?Z), disj(?Y, ?Z) -> false",
                        dict.get());
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->IsConstraint());
}

TEST(ParserTest, ParsesZeroAryHead) {
  auto dict = Dict();
  auto rule = ParseRule("ism(?X, ?Y), max(?Y), not noclique(?X) -> yes()",
                        dict.get());
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head[0].arity(), 0u);
}

TEST(ParserTest, ParsesQuotedConstants) {
  auto dict = Dict();
  auto rule = ParseRule(
      "triple(?X, name, \"Jeffrey Ullman\") -> found(?X)", dict.get());
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(dict->Text(rule->body[0].args[2].symbol()), "\"Jeffrey Ullman\"");
}

TEST(ParserTest, ParsesColonsInUris) {
  auto dict = Dict();
  auto rule = ParseRule(
      "triple(?X, rdf:type, owl:Restriction) -> restriction(?X)", dict.get());
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(dict->Text(rule->body[0].args[1].symbol()), "rdf:type");
}

TEST(ParserTest, CommentsAreIgnored) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    % a comment
    p(?X) -> q(?X) .  # another
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->size(), 1u);
}

TEST(ParserTest, RejectsUnsafeNegation) {
  auto dict = Dict();
  auto rule = ParseRule("p(?X), not q(?Y) -> r(?X)", dict.get());
  EXPECT_FALSE(rule.ok());
}

TEST(ParserTest, RejectsEmptyBody) {
  auto dict = Dict();
  auto rule = ParseRule("-> q(a)", dict.get());
  EXPECT_FALSE(rule.ok());
}

TEST(ParserTest, RejectsNegatedHead) {
  auto dict = Dict();
  auto rule = ParseRule("p(?X) -> not q(?X)", dict.get());
  EXPECT_FALSE(rule.ok());
}

TEST(ParserTest, RejectsExistentialAlsoInBody) {
  auto dict = Dict();
  auto rule = ParseRule("p(?X) -> exists ?X q(?X)", dict.get());
  EXPECT_FALSE(rule.ok());
}

TEST(ParserTest, RejectsMissingDotBetweenRules) {
  auto dict = Dict();
  auto program = ParseProgram("p(?X) -> q(?X) p(?Y) -> q(?Y) .", dict);
  EXPECT_FALSE(program.ok());
}

TEST(ParserTest, RoundTripsThroughToString) {
  auto dict = Dict();
  auto program = ParseProgram(R"(
    p(?X, c), not q(?X) -> exists ?Y r(?X, ?Y) .
    r(?X, ?Y) -> false .
  )",
                              dict);
  ASSERT_TRUE(program.ok());
  auto reparsed = ParseProgram(program->ToString(), dict);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(), program->ToString());
}

TEST(ParserTest, ParseAtomStandalone) {
  auto dict = Dict();
  auto atom = ParseAtom("not edge(?W, ?U)", dict.get());
  ASSERT_TRUE(atom.ok());
  EXPECT_TRUE(atom->negated);
  EXPECT_EQ(atom->arity(), 2u);
}

}  // namespace
}  // namespace triq::datalog

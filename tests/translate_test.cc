#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "datalog/classify.h"
#include "rdf/graph.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "translate/sparql_to_datalog.h"

namespace triq::translate {
namespace {

using sparql::GraphPattern;
using sparql::MappingSet;

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

std::unique_ptr<GraphPattern> Parse(std::string_view text, Dictionary* dict) {
  auto pattern = sparql::ParsePattern(text, dict);
  EXPECT_TRUE(pattern.ok()) << pattern.status().ToString();
  return std::move(pattern).value();
}

/// Checks Theorem 5.2 on one (pattern, graph) pair: the direct SPARQL
/// evaluator and the chased Datalog translation produce the same set of
/// mappings.
void ExpectEquivalent(const GraphPattern& pattern, const rdf::Graph& graph,
                      std::shared_ptr<Dictionary> dict) {
  MappingSet direct = sparql::Evaluate(pattern, graph);
  TranslationOptions options;
  options.regime = Regime::kPlain;
  auto translated = TranslatePattern(pattern, dict, options);
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();
  auto mapped = EvaluateTranslated(*translated, graph);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(direct == *mapped)
      << "pattern: " << pattern.ToString(*dict) << "\ndirect:\n"
      << direct.ToString(*dict) << "\ntranslated:\n" << mapped->ToString(*dict);
}

rdf::Graph AuthorsGraph(std::shared_ptr<Dictionary> dict) {
  rdf::Graph g(std::move(dict));
  g.Add("dbUllman", "is_author_of", "\"The Complete Book\"");
  g.Add("dbUllman", "name", "\"Jeffrey Ullman\"");
  g.Add("dbAho", "name", "\"Alfred Aho\"");
  g.Add("dbAho", "phone", "\"555\"");
  g.Add("\"555\"", "phone_company", "acme");
  return g;
}

TEST(TranslateTest, BasicPatternMatchesTheorem52) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse("{ ?Y is_author_of ?Z . ?Y name ?X }", dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, BlankNodesProjectAway) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse("{ ?X name _:B }", dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, SelectProjection) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse("SELECT(?X, { ?Y is_author_of ?Z . ?Y name ?X })",
                 dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, UnionPadsWithStar) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse("UNION({ ?X is_author_of ?Z }, { ?X phone ?W })",
                 dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, OptionalPhones) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  // P3 of Example 5.1.
  auto p = Parse("OPT({ ?X name ?Y }, { ?X phone ?Z })", dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, NestedOptAndJoin) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  // P4 of Example 5.1, including the cartesian-product phenomenon.
  auto p = Parse(
      "AND(OPT({ ?X name ?Y }, { ?X phone ?Z }),"
      "    { ?Z phone_company ?W })",
      dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, JoinOnPossiblyUnboundVariable) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("a", "name", "n1");
  g.Add("a", "phone", "p1");
  g.Add("b", "name", "n2");
  g.Add("p1", "phone_company", "acme");
  auto p = Parse(
      "AND(OPT({ ?X name ?Y }, { ?X phone ?Z }),"
      "    { ?Z phone_company ?W })",
      dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, FilterBound) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse("FILTER(OPT({ ?X name ?Y }, { ?X phone ?Z }), bound(?Z))",
                 dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, FilterNegationAndConnectives) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse(
      "FILTER(OPT({ ?X name ?Y }, { ?X phone ?Z }),"
      "       (! bound(?Z) || ?X = dbAho))",
      dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, FilterEqVar) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("a", "p", "a");
  g.Add("a", "p", "b");
  g.Add("b", "q", "b");
  auto p = Parse("FILTER({ ?X p ?Y }, ?X = ?Y)", dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, OptOfOpt) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse(
      "OPT(OPT({ ?X name ?Y }, { ?X phone ?Z }),"
      "    { ?Z phone_company ?W })",
      dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, UnionOfIncompatibleSchemas) {
  auto dict = Dict();
  rdf::Graph g = AuthorsGraph(dict);
  auto p = Parse(
      "AND(UNION({ ?X name ?Y }, { ?X phone ?Z }), { ?X name ?N })",
      dict.get());
  ExpectEquivalent(*p, g, dict);
}

TEST(TranslateTest, TranslationIsTriqLite10) {
  auto dict = Dict();
  auto p = Parse(
      "FILTER(OPT({ ?X name ?Y }, { ?X phone ?Z }), bound(?Z))", dict.get());
  TranslationOptions options;
  options.regime = Regime::kPlain;
  auto translated = TranslatePattern(*p, dict, options);
  ASSERT_TRUE(translated.ok());
  // Corollary 5.4 / 6.2: the emitted program is within TriQ-Lite 1.0.
  auto check = datalog::IsTriqLite10(translated->program);
  EXPECT_TRUE(check) << check.reason;
}

TEST(TranslateTest, EntailmentRegimeTranslationIsTriqLite10) {
  auto dict = Dict();
  auto p = Parse("{ ?X eats _:B . _:B rdf:type plant_material }", dict.get());
  for (Regime regime : {Regime::kActiveDomain, Regime::kAll}) {
    TranslationOptions options;
    options.regime = regime;
    auto translated = TranslatePattern(*p, dict, options);
    ASSERT_TRUE(translated.ok());
    auto check = datalog::IsTriqLite10(translated->program);
    EXPECT_TRUE(check) << check.reason;
  }
}

TEST(TranslateTest, EmptyBasicPatternRejected) {
  auto dict = Dict();
  GraphPattern p;
  p.kind = GraphPattern::Kind::kBasic;
  TranslationOptions options;
  EXPECT_FALSE(TranslatePattern(p, dict, options).ok());
}

// ---- Randomized equivalence sweep (property test for Theorem 5.2) ----

class RandomPattern {
 public:
  RandomPattern(uint64_t seed, Dictionary* dict) : rng_(seed), dict_(dict) {}

  std::unique_ptr<GraphPattern> Generate(int depth) {
    if (depth == 0 || Chance(0.4)) return RandomBasic();
    switch (rng_() % 5) {
      case 0:
        return GraphPattern::And(Generate(depth - 1), Generate(depth - 1));
      case 1:
        return GraphPattern::Union(Generate(depth - 1), Generate(depth - 1));
      case 2:
        return GraphPattern::Opt(Generate(depth - 1), Generate(depth - 1));
      case 3: {
        auto inner = Generate(depth - 1);
        std::vector<SymbolId> vars = inner->Variables();
        if (vars.empty()) return inner;
        auto cond = RandomCondition(vars, 2);
        return GraphPattern::Filter(std::move(inner), std::move(cond));
      }
      default: {
        auto inner = Generate(depth - 1);
        std::vector<SymbolId> vars = inner->Variables();
        if (vars.empty()) return inner;
        std::vector<SymbolId> proj;
        for (SymbolId v : vars) {
          if (Chance(0.6)) proj.push_back(v);
        }
        if (proj.empty()) proj.push_back(vars[0]);
        return GraphPattern::Select(std::move(proj), std::move(inner));
      }
    }
  }

  rdf::Graph RandomGraph(std::shared_ptr<Dictionary> dict, int triples) {
    rdf::Graph g(std::move(dict));
    for (int i = 0; i < triples; ++i) {
      g.Add(RandomConstant(), RandomPredicate(), RandomConstant());
    }
    return g;
  }

 private:
  bool Chance(double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng_) < p;
  }
  std::string RandomConstant() {
    return std::string(1, static_cast<char>('a' + rng_() % 4));
  }
  std::string RandomPredicate() {
    return std::string(1, static_cast<char>('p' + rng_() % 3));
  }
  sparql::PatternTerm RandomTerm() {
    uint64_t roll = rng_() % 10;
    if (roll < 4) {
      return sparql::PatternTerm::Variable(
          dict_->Intern("?V" + std::to_string(rng_() % 4)));
    }
    if (roll < 5) {
      return sparql::PatternTerm::Blank(
          dict_->Intern("_:B" + std::to_string(rng_() % 2)));
    }
    return sparql::PatternTerm::Constant(dict_->Intern(RandomConstant()));
  }
  std::unique_ptr<GraphPattern> RandomBasic() {
    std::vector<sparql::TriplePattern> triples;
    int n = 1 + rng_() % 2;
    for (int i = 0; i < n; ++i) {
      sparql::TriplePattern tp;
      tp.subject = RandomTerm();
      tp.predicate = sparql::PatternTerm::Constant(
          dict_->Intern(RandomPredicate()));
      tp.object = RandomTerm();
      triples.push_back(tp);
    }
    return GraphPattern::Basic(std::move(triples));
  }
  std::unique_ptr<sparql::Condition> RandomCondition(
      const std::vector<SymbolId>& vars, int depth) {
    if (depth == 0 || Chance(0.5)) {
      SymbolId v = vars[rng_() % vars.size()];
      switch (rng_() % 3) {
        case 0:
          return sparql::Condition::Bound(v);
        case 1:
          return sparql::Condition::EqConst(v,
                                            dict_->Intern(RandomConstant()));
        default:
          return sparql::Condition::EqVar(v, vars[rng_() % vars.size()]);
      }
    }
    switch (rng_() % 3) {
      case 0:
        return sparql::Condition::Not(RandomCondition(vars, depth - 1));
      case 1:
        return sparql::Condition::Or(RandomCondition(vars, depth - 1),
                                     RandomCondition(vars, depth - 1));
      default:
        return sparql::Condition::And(RandomCondition(vars, depth - 1),
                                      RandomCondition(vars, depth - 1));
    }
  }

  std::mt19937_64 rng_;
  Dictionary* dict_;
};

class TranslationEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(TranslationEquivalenceSweep, RandomPatternsAgree) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  auto dict = Dict();
  RandomPattern gen(seed, dict.get());
  rdf::Graph graph = gen.RandomGraph(dict, 12);
  for (int trial = 0; trial < 5; ++trial) {
    auto pattern = gen.Generate(3);
    ExpectEquivalent(*pattern, graph, dict);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationEquivalenceSweep,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace triq::translate

#include <gtest/gtest.h>

#include <memory>

#include "core/triq.h"
#include "core/workloads.h"
#include "datalog/parser.h"
#include "translate/vocab_rules.h"

namespace triq::translate {
namespace {

std::shared_ptr<Dictionary> Dict() { return std::make_shared<Dictionary>(); }

/// Appends the rule-library `lib` and the user query text to a fresh
/// program, then evaluates it over τ_db(G).
Result<std::vector<chase::Tuple>> Ask(const rdf::Graph& graph,
                                      datalog::Program lib,
                                      std::string_view query_text,
                                      std::shared_ptr<Dictionary> dict) {
  auto user = datalog::ParseProgram(query_text, dict);
  if (!user.ok()) return user.status();
  Status appended = lib.Append(*user);
  if (!appended.ok()) return appended;
  auto query = core::TriqQuery::Create(std::move(lib), "query");
  if (!query.ok()) return query.status();
  chase::Instance db = chase::Instance::FromGraph(graph);
  return query->Evaluate(db);
}

// Rule (2) of Section 2: list the authors.
constexpr std::string_view kAuthorsQuery =
    "triple(?Y, is_author_of, ?Z), triple(?Y, name, ?X) -> query(?X) .";

TEST(VocabRulesTest, SameAsRecoversUllmanOnG4) {
  auto dict = Dict();
  rdf::Graph g4 = core::AuthorsGraphG4(dict);
  // Without the library, query (1) is empty on G4...
  auto bare = Ask(g4, datalog::Program(dict), kAuthorsQuery, dict);
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->empty());
  // ...with the owl:sameAs library it finds "Jeffrey Ullman".
  auto with_lib = Ask(g4, SameAsRules(dict), kAuthorsQuery, dict);
  ASSERT_TRUE(with_lib.ok());
  ASSERT_EQ(with_lib->size(), 1u);
  EXPECT_EQ(dict->Text((*with_lib)[0][0].symbol()), "\"Jeffrey Ullman\"");
}

TEST(VocabRulesTest, SameAsIsSymmetricAndTransitive) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("a", "owl:sameAs", "b");
  g.Add("b", "owl:sameAs", "c");
  g.Add("c", "likes", "tea");
  auto result = Ask(g, SameAsRules(dict),
                    "triple(a, likes, ?X) -> query(?X) .", dict);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(dict->Text((*result)[0][0].symbol()), "tea");
}

TEST(VocabRulesTest, RdfsSubclassPropagation) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("rex", "rdf:type", "dog");
  g.Add("dog", "rdfs:subClassOf", "mammal");
  g.Add("mammal", "rdfs:subClassOf", "animal");
  auto result = Ask(g, RdfsRules(dict),
                    "triple(?X, rdf:type, animal) -> query(?X) .", dict);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(dict->Text((*result)[0][0].symbol()), "rex");
}

TEST(VocabRulesTest, RdfsSubPropertyPropagation) {
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("ann", "owns", "car");
  g.Add("owns", "rdfs:subPropertyOf", "has");
  auto result = Ask(g, RdfsRules(dict),
                    "triple(ann, has, ?X) -> query(?X) .", dict);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
}

TEST(VocabRulesTest, OnPropertyPlusRdfsSolvesG3) {
  // The Section 2 punchline: with the vocabulary libraries included,
  // query (1) on G3 finds dbAho — no manual semantics encoding.
  auto dict = Dict();
  rdf::Graph g3 = core::AuthorsGraphG3(dict);
  datalog::Program lib = OnPropertyRules(dict);
  ASSERT_TRUE(lib.Append(RdfsRules(dict)).ok());
  auto result = Ask(g3, std::move(lib), kAuthorsQuery, dict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<std::string> names;
  for (const chase::Tuple& t : *result) {
    names.push_back(dict->Text(t[0].symbol()));
  }
  std::sort(names.begin(), names.end());
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "\"Alfred Aho\"");
  EXPECT_EQ(names[1], "\"Jeffrey Ullman\"");
}

TEST(VocabRulesTest, WithoutLibrariesG3MissesAho) {
  auto dict = Dict();
  rdf::Graph g3 = core::AuthorsGraphG3(dict);
  auto result = Ask(g3, datalog::Program(dict), kAuthorsQuery, dict);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);  // only Ullman
}

TEST(VocabRulesTest, CoauthorRuleInventsSharedPublication) {
  auto dict = Dict();
  rdf::Graph g2 = core::AuthorsGraphG2(dict);
  auto lib = datalog::ParseProgram(R"(
    triple(?X, is_coauthor_of, ?Y) -> exists ?Z
        triple(?X, is_author_of, ?Z), triple(?Y, is_author_of, ?Z) .
  )",
                                   dict);
  ASSERT_TRUE(lib.ok());
  auto result = Ask(g2, std::move(*lib), kAuthorsQuery, dict);
  ASSERT_TRUE(result.ok());
  // Aho now has an (anonymous) publication, so his name is returned.
  ASSERT_EQ(result->size(), 2u);
}

TEST(VocabRulesTest, AnonymizationReplacesSubjects) {
  // The Section 2 anonymization program: every subject URI is replaced
  // by one blank node, consistently across triples.
  auto dict = Dict();
  rdf::Graph g(dict);
  g.Add("alice", "knows", "bob");
  g.Add("alice", "likes", "tea");
  auto program = datalog::ParseProgram(R"(
    triple(?X, ?Y, ?Z) -> subj(?X) .
    subj(?X) -> exists ?Y bn(?X, ?Y) .
    triple(?X, ?Y, ?Z), bn(?X, ?U) -> output(?U, ?Y, ?Z) .
  )",
                                       dict);
  ASSERT_TRUE(program.ok());
  chase::Instance db = chase::Instance::FromGraph(g);
  ASSERT_TRUE(chase::RunChase(*program, &db).ok());
  const chase::Relation* out = db.Find(dict->Intern("output"));
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->size(), 2u);
  // Both output triples share the same blank for alice.
  EXPECT_TRUE(out->tuple(0)[0].IsNull());
  EXPECT_EQ(out->tuple(0)[0], out->tuple(1)[0]);
}

TEST(VocabRulesTest, TransportReachability) {
  auto dict = Dict();
  rdf::Graph net = core::TransportNetwork(5, 3, dict);
  datalog::Program program = core::TransportProgram(dict);
  auto query = core::TriqQuery::Create(std::move(program), "query");
  ASSERT_TRUE(query.ok());
  chase::Instance db = chase::Instance::FromGraph(net);
  auto result = query->Evaluate(db);
  ASSERT_TRUE(result.ok());
  // Reachability on a 5-city chain: 4+3+2+1 pairs.
  EXPECT_EQ(result->size(), 10u);
  auto holds = query->Holds(db, {"city0", "city4"});
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
}

TEST(VocabRulesTest, TransportNeedsThePartOfClain) {
  auto dict = Dict();
  // Without partOf chains to transportService nothing is reachable.
  rdf::Graph g(dict);
  g.Add("city0", "svc0", "city1");
  datalog::Program program = core::TransportProgram(dict);
  auto query = core::TriqQuery::Create(std::move(program), "query");
  ASSERT_TRUE(query.ok());
  auto result = query->Evaluate(chase::Instance::FromGraph(g));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace triq::translate

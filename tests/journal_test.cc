// The write-ahead journal's on-disk contract: append/recover round
// trips, torn-tail truncation, bit-rot detection, failed-append rewind,
// checkpoint compaction, and the epoch stitching that makes the
// checkpoint+reset pair crash-atomic (crashes simulated with real
// fork + _Exit through failpoints).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "engine/journal.h"

namespace triq {
namespace {

using Op = Journal::Op;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveJournal(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".ckpt").c_str());
  std::remove((path + ".ckpt.tmp").c_str());
}

Result<std::unique_ptr<Journal>> OpenAt(const std::string& path,
                                        Journal::Recovery* recovery) {
  return Journal::Open(path, JournalFsync::kNever, 64, recovery);
}

/// Runs `child` in a forked process and expects it to _Exit(42) via a
/// crash failpoint. The child configures its own failpoints after the
/// fork, so the parent's registry stays disarmed.
void ExpectCrash(const std::function<void()>& child) {
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    child();
    std::_Exit(99);  // reached only if the failpoint did not fire
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 42) << "child did not crash as expected";
}

TEST(JournalTest, FreshJournalRecoversEmpty) {
  const std::string path = TempPath("fresh.journal");
  RemoveJournal(path);
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_FALSE(recovery.has_checkpoint);
  EXPECT_TRUE(recovery.records.empty());
  EXPECT_EQ(recovery.truncated_bytes, 0u);
}

TEST(JournalTest, AppendThenRecoverRoundTrips) {
  const std::string path = TempPath("roundtrip.journal");
  RemoveJournal(path);
  {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(Op::kAddTriple, {"s", "p", "o"}).ok());
    ASSERT_TRUE((*journal)->Append(Op::kLoadTurtle, {"<a> <b> <c> ."}).ok());
    ASSERT_TRUE((*journal)->Append(Op::kMaterialize, {}).ok());
    // Binary-unsafe content must survive verbatim (fact-dump blobs).
    ASSERT_TRUE(
        (*journal)
            ->Append(Op::kLoadFactsBlob, {"1", std::string("\0\n\xff x", 5)})
            .ok());
    EXPECT_EQ((*journal)->stats().records_appended, 4u);
  }
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_EQ(recovery.records.size(), 4u);
  EXPECT_EQ(recovery.records[0].op, Op::kAddTriple);
  EXPECT_EQ(recovery.records[0].fields,
            (std::vector<std::string>{"s", "p", "o"}));
  EXPECT_EQ(recovery.records[1].op, Op::kLoadTurtle);
  EXPECT_EQ(recovery.records[1].fields[0], "<a> <b> <c> .");
  EXPECT_EQ(recovery.records[2].op, Op::kMaterialize);
  EXPECT_TRUE(recovery.records[2].fields.empty());
  EXPECT_EQ(recovery.records[3].fields[1], std::string("\0\n\xff x", 5));
  EXPECT_EQ(recovery.truncated_bytes, 0u);
}

TEST(JournalTest, TornTailIsTruncatedOnce) {
  const std::string path = TempPath("torn.journal");
  RemoveJournal(path);
  {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(Op::kAddTriple, {"s", "p", "o"}).ok());
    ASSERT_TRUE((*journal)->Append(Op::kAddTriple, {"s2", "p2", "o2"}).ok());
  }
  {
    // A crash mid-append leaves a partial frame at the tail.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00garbage", 11);
  }
  {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    EXPECT_EQ(recovery.records.size(), 2u);
    EXPECT_EQ(recovery.truncated_bytes, 11u);
  }
  // The tail was physically truncated: a second recovery is clean.
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(recovery.records.size(), 2u);
  EXPECT_EQ(recovery.truncated_bytes, 0u);
}

TEST(JournalTest, BitFlipStopsReplayAtTheFlip) {
  const std::string path = TempPath("bitflip.journal");
  RemoveJournal(path);
  {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(Op::kAddTriple, {"s", "p", "o"}).ok());
    ASSERT_TRUE((*journal)->Append(Op::kAddTriple, {"s2", "p2", "o2"}).ok());
  }
  {
    // Flip one byte inside the last record's payload: its CRC must
    // catch it and replay must stop before it.
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    file.seekp(size - 2);
    char byte = 0;
    file.seekg(size - 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(size - 2);
    file.write(&byte, 1);
  }
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(recovery.records.size(), 1u);
  EXPECT_GT(recovery.truncated_bytes, 0u);
}

TEST(JournalTest, FailedAppendRewindsSoLaterAppendsSurvive) {
  const std::string path = TempPath("rewind.journal");
  RemoveJournal(path);
  {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(Op::kAddTriple, {"a", "b", "c"}).ok());
    ASSERT_TRUE(FailpointsConfigure("journal.write.short:1"));
    Status torn = (*journal)->Append(Op::kAddTriple, {"x", "y", "z"});
    ASSERT_TRUE(FailpointsConfigure(""));
    EXPECT_EQ(torn.code(), StatusCode::kDataLoss);
    // The tear was rewound, so this append lands on a clean tail and
    // must be visible to replay.
    ASSERT_TRUE((*journal)->Append(Op::kAddTriple, {"d", "e", "f"}).ok());
  }
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_EQ(recovery.records.size(), 2u);
  EXPECT_EQ(recovery.records[0].fields[0], "a");
  EXPECT_EQ(recovery.records[1].fields[0], "d");
  EXPECT_EQ(recovery.truncated_bytes, 0u);
}

TEST(JournalTest, CheckpointCompactsAndKeepsTheTail) {
  const std::string path = TempPath("ckpt.journal");
  RemoveJournal(path);
  {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(Op::kAddTriple, {"old", "p", "o"}).ok());
    ASSERT_TRUE((*journal)->Append(Op::kMaterialize, {}).ok());
    ASSERT_TRUE(
        (*journal)->Checkpoint("rules text", "fact blob bytes", true).ok());
    ASSERT_TRUE((*journal)->Append(Op::kAddTriple, {"tail", "p", "o"}).ok());
    EXPECT_EQ((*journal)->stats().checkpoints, 1u);
  }
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_TRUE(recovery.has_checkpoint);
  EXPECT_TRUE(recovery.checkpoint_materialized);
  EXPECT_EQ(recovery.checkpoint_rules, "rules text");
  EXPECT_EQ(recovery.checkpoint_blob, "fact blob bytes");
  ASSERT_EQ(recovery.records.size(), 1u);
  EXPECT_EQ(recovery.records[0].fields[0], "tail");
  EXPECT_EQ(recovery.stale_records_dropped, 0u);
}

TEST(JournalTest, CorruptCheckpointIsDataLossNotSilent) {
  const std::string path = TempPath("badckpt.journal");
  RemoveJournal(path);
  {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Checkpoint("r", "b", false).ok());
  }
  {
    // Flip a byte in the checkpoint body: rename is atomic, so a bad
    // checksum here is genuine bit rot and must refuse to load.
    std::fstream file(path + ".ckpt",
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(9);
    file.write("\xff", 1);
  }
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kDataLoss);
}

TEST(JournalTest, EpochMismatchRefusesToStitch) {
  const std::string path = TempPath("epoch.journal");
  RemoveJournal(path);
  {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Checkpoint("r", "b", false).ok());
  }
  {
    // Fake a journal two epochs ahead of its checkpoint — a replaced or
    // swapped .ckpt file, not any crash this code can produce.
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(12);  // epoch field, after magic + version
    const char epoch3[8] = {3, 0, 0, 0, 0, 0, 0, 0};
    file.write(epoch3, 8);
  }
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kDataLoss);
}

TEST(JournalTest, CrashDuringCheckpointKeepsOldStateReplayable) {
  const std::string path = TempPath("ckptcrash.journal");
  RemoveJournal(path);
  ExpectCrash([&] {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    if (!journal.ok()) std::_Exit(99);
    if (!(*journal)->Append(Op::kAddTriple, {"a", "b", "c"}).ok()) {
      std::_Exit(99);
    }
    if (!(*journal)->Append(Op::kAddTriple, {"d", "e", "f"}).ok()) {
      std::_Exit(99);
    }
    FailpointsConfigure("journal.checkpoint.crash:1");
    (void)(*journal)->Checkpoint("rules", "blob", true);  // _Exit(42)
  });
  // The tmp file never renamed: no checkpoint, the journal replays in
  // full, exactly as if the checkpoint had never been attempted.
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_FALSE(recovery.has_checkpoint);
  EXPECT_EQ(recovery.records.size(), 2u);
}

TEST(JournalTest, CrashAfterCheckpointRenameDropsStaleRecords) {
  const std::string path = TempPath("resetcrash.journal");
  RemoveJournal(path);
  ExpectCrash([&] {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    if (!journal.ok()) std::_Exit(99);
    if (!(*journal)->Append(Op::kAddTriple, {"a", "b", "c"}).ok()) {
      std::_Exit(99);
    }
    if (!(*journal)->Append(Op::kAddTriple, {"d", "e", "f"}).ok()) {
      std::_Exit(99);
    }
    FailpointsConfigure("journal.reset.crash:1");
    (void)(*journal)->Checkpoint("rules", "blob", true);  // _Exit(42)
  });
  // The rename happened, the journal reset did not: the old records are
  // one epoch behind the checkpoint and must be discarded, not replayed
  // on top of the image that already contains them.
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_TRUE(recovery.has_checkpoint);
  EXPECT_EQ(recovery.checkpoint_blob, "blob");
  EXPECT_TRUE(recovery.records.empty());
  EXPECT_EQ(recovery.stale_records_dropped, 2u);
}

TEST(JournalTest, CrashMidAppendLosesOnlyTheTornRecord) {
  const std::string path = TempPath("writecrash.journal");
  RemoveJournal(path);
  ExpectCrash([&] {
    Journal::Recovery recovery;
    auto journal = OpenAt(path, &recovery);
    if (!journal.ok()) std::_Exit(99);
    if (!(*journal)->Append(Op::kAddTriple, {"a", "b", "c"}).ok()) {
      std::_Exit(99);
    }
    FailpointsConfigure("journal.write.crash:1");
    (void)(*journal)->Append(Op::kAddTriple, {"torn", "p", "o"});  // _Exit
  });
  Journal::Recovery recovery;
  auto journal = OpenAt(path, &recovery);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_EQ(recovery.records.size(), 1u);
  EXPECT_EQ(recovery.records[0].fields[0], "a");
  EXPECT_GT(recovery.truncated_bytes, 0u);
}

}  // namespace
}  // namespace triq
